"""The curated case-study world, using the paper's real AS numbers.

This world is hand-wired so the *structural* facts behind the paper's
evaluation hold by construction:

* **Australia (Table 5).** Telstra splits domestic (1221) and
  international (4637, registered outside AU) transit; 1221 exclusively
  serves a large slice of AU eyeball space, so both Telstra ASes
  dominate the hegemony views while barely registering in Vocus' cone.
  Vocus (4826, under Arelion 1299) wholesales to a deep customer tree,
  which the closure-style customer cone credits to both Vocus and —
  transitively — Arelion (the cone-inflation effect §5.1 discusses).
* **Japan (Table 6).** NTT's 2914 (US-registered, international) sits
  above NTT OCN 4713 (domestic eyeball); KDDI 2516 and Softbank 17676
  split the rest of the domestic market.
* **Russia (Table 7, Table 10, Figure 7).** Rostelecom 12389 leads a
  market of several eyeball carriers, all fed by non-Russian tier-1s;
  Central-Asian former-Soviet countries buy transit from Russian ASes
  while the Western former republics buy from Europe.
* **United States (Table 8).** Lumen 3356 dominates; Hurricane 6939
  peers liberally and carries a meaningful eyeball share; AT&T 7018 is
  both tier-1 and a huge domestic carrier.
* **Taiwan (Table 11).** Chunghwa's dual ASes (9505 international,
  3462 domestic) top the rankings; China Telecom 4134 provides some
  transit in the 2021 snapshot and none in 2023.
* **Regional hegemons (Table 12, Figure 7).** Minor countries buy from
  the continent's usual suspects (Telstra in Oceania, Orange/Liquid/
  MTN/WIOCC in Africa, Telefonica in South America, Russian carriers in
  Central Asia), with U.S. tier-1s as the most common secondary
  upstream.
* **Amazon (§5.1.2).** 16509 is registered in the US but originates
  prefixes geolocated in AU/JP/US — visible to AHN, invisible to AHC.

Two snapshots exist: ``"2021-04"`` and ``"2023-03"``; the latter applies
the geopolitical edge changes of §6 (GTT leaves Russia, Orange and
Cogent pick up Russian customers, China Telecom loses its Taiwanese
customers, Chunghwa's domestic AS loses a large wholesale customer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.collectors import Collector, CollectorProject, CollectorSet
from repro.net.prefix import Prefix, format_address
from repro.topology.countries import default_registry
from repro.topology.model import ASGraph, ASRole
from repro.topology.world import World

SNAPSHOT_2021 = "2021-04"
SNAPSHOT_2023 = "2023-03"
PAPER_SNAPSHOTS = (SNAPSHOT_2021, SNAPSHOT_2023)

#: Countries whose national views the paper's case studies use (§5).
CASE_STUDY_COUNTRIES = ("AU", "JP", "RU", "US")


@dataclass(frozen=True, slots=True)
class _Spec:
    """One named AS: identity plus its place in the topology."""

    asn: int
    name: str
    country: str
    role: ASRole = ASRole.TRANSIT
    #: transit providers (ASNs)
    providers: tuple[int, ...] = ()
    #: settlement-free peers (ASNs); deduplicated, symmetric
    peers: tuple[int, ...] = ()
    #: /16 blocks of own (eyeball) address space in the home country
    eyeball_blocks: int = 0
    #: filler stub customers to attach (each gets a /20)
    stubs: int = 0
    #: filler access customers to attach (each gets a /17)
    access: int = 0


# ---------------------------------------------------------------------------
# The global top tier (clique, fully meshed) — flags as in the paper.
# ---------------------------------------------------------------------------

_TIER1: tuple[_Spec, ...] = (
    _Spec(3356, "Lumen", "US", ASRole.CLIQUE, eyeball_blocks=4),
    _Spec(1299, "Arelion", "SE", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(174, "Cogent", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(2914, "NTT America", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(3257, "GTT", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(6762, "Telecom Italia Sparkle", "IT", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(6453, "TATA Communications", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(6461, "Zayo", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(5511, "Orange International", "FR", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(3491, "PCCW Global", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(1239, "Sprint", "US", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(701, "Verizon", "US", ASRole.CLIQUE, eyeball_blocks=2),
    _Spec(7018, "AT&T", "US", ASRole.CLIQUE, eyeball_blocks=4, stubs=2),
    _Spec(12956, "Telefonica Global", "ES", ASRole.CLIQUE, eyeball_blocks=1),
    _Spec(1273, "Vodafone Carrier", "GB", ASRole.CLIQUE, eyeball_blocks=1),
)

_HURRICANE = _Spec(
    6939, "Hurricane Electric", "US", ASRole.TRANSIT,
    # Famously liberal peering (§5.4): eyeball ISPs worldwide reach the
    # U.S. (and Vocus' Australian tree) over Hurricane peer routes.
    peers=(1136, 2856, 3320, 3215, 3301, 3269, 3352, 4230, 4826, 9443),
    eyeball_blocks=1, stubs=6,
)

_CONTENT: tuple[_Spec, ...] = (
    _Spec(16509, "Amazon", "US", ASRole.CONTENT),
    _Spec(20940, "Akamai", "NL", ASRole.CONTENT),
)

#: (content ASN, country, /16 blocks) — out-of-registry originations.
_CONTENT_PRESENCE: tuple[tuple[int, str, int], ...] = (
    (16509, "US", 2),
    (16509, "AU", 1),
    (16509, "JP", 1),
    (20940, "NL", 1),
    (20940, "US", 1),
    (20940, "DE", 1),
)


# ---------------------------------------------------------------------------
# Case-study and supporting countries.
# ---------------------------------------------------------------------------

_NAMED: tuple[_Spec, ...] = (
    # --- Australia (Table 5 / Table 9) ---
    _Spec(4637, "Telstra Global", "HK", providers=(3356, 2914),
          peers=(6939, 7473, 6461, 174)),
    _Spec(1221, "Telstra", "AU", providers=(4637,),
          peers=(4826, 7474), eyeball_blocks=9, stubs=6),
    _Spec(4826, "Vocus", "AU", providers=(1299, 6461),
          eyeball_blocks=1),
    _Spec(9443, "Vocus Retail", "AU", providers=(4826,),
          eyeball_blocks=1, stubs=2, access=1),
    _Spec(7545, "TPG", "AU", providers=(4826,), peers=(1221, 7474),
          eyeball_blocks=3, stubs=4),
    _Spec(4804, "SingTel Optus Intl", "SG", providers=(1273, 701)),
    _Spec(7474, "SingTel Optus", "AU", providers=(4804, 4826),
          eyeball_blocks=5, stubs=2),
    # --- Japan (Table 6) ---
    _Spec(4713, "NTT OCN", "JP", providers=(2914,),
          peers=(2516, 17676), eyeball_blocks=5, stubs=4),
    _Spec(2516, "KDDI", "JP", providers=(3356, 3257),
          peers=(17676,), eyeball_blocks=7, stubs=4, access=2),
    _Spec(17676, "Softbank", "JP", providers=(2914, 3257),
          eyeball_blocks=6, stubs=3),
    _Spec(9605, "NTT Docomo", "JP", providers=(2914,),
          peers=(4713, 2516, 17676), eyeball_blocks=4, stubs=2),
    _Spec(2907, "SINET", "JP", ASRole.EDUCATION, providers=(4713,),
          eyeball_blocks=1),
    # --- Russia (Table 7 / Table 10) ---
    _Spec(12389, "Rostelecom", "RU", providers=(1299, 3356, 6762),
          peers=(3216, 8359, 20485), eyeball_blocks=8, stubs=5, access=2),
    _Spec(20485, "TransTelecom", "RU", providers=(1273, 1299, 3257, 3356),
          eyeball_blocks=2, stubs=3),
    _Spec(9049, "ER-Telecom", "RU", providers=(12389, 9002),
          peers=(8359,), eyeball_blocks=3, stubs=2),
    _Spec(8359, "MTS PJSC", "RU", providers=(1273, 20485),
          eyeball_blocks=3, stubs=2),
    _Spec(3216, "Vimpelcom", "RU", providers=(3356, 3491),
          peers=(20485,), eyeball_blocks=2, stubs=2),
    _Spec(31133, "MegaFon", "RU", providers=(20485, 9002),
          peers=(12389, 8359), eyeball_blocks=2),
    _Spec(8402, "Vimpelcom Broadband", "RU", providers=(3216, 174),
          peers=(12389, 20485), eyeball_blocks=2),
    _Spec(9002, "RETN", "GB", providers=(1299,), peers=(6939,)),
    # --- United States (Table 8) ---
    _Spec(7922, "Comcast", "US", providers=(3356, 3257),
          peers=(20115, 22773, 209, 6939), eyeball_blocks=5, stubs=2),
    _Spec(20115, "Charter", "US", providers=(701, 174),
          peers=(22773,), eyeball_blocks=5, stubs=4),
    _Spec(209, "CenturyLink legacy", "US", providers=(3356, 6939),
          eyeball_blocks=4, stubs=2),
    _Spec(22773, "Cox", "US", providers=(1239, 6939),
          eyeball_blocks=4, stubs=2),
    _Spec(11537, "Internet2", "US", ASRole.EDUCATION, providers=(7018,),
          eyeball_blocks=1),
    # --- Taiwan (Table 11) ---
    _Spec(9505, "Chunghwa Intl (TWGate)", "TW", providers=(3356, 1299),
          peers=(4637,)),
    _Spec(3462, "Chunghwa HiNet", "TW", providers=(9505, 3356, 174),
          peers=(4780, 9924), eyeball_blocks=6, stubs=4),
    _Spec(9680, "HiNet Data Comm", "TW", providers=(3462,),
          eyeball_blocks=2, stubs=2),
    _Spec(4780, "Digital United", "TW", providers=(9505, 3257),
          eyeball_blocks=2, stubs=2),
    _Spec(9924, "Taiwan Fixed Network", "TW", providers=(9505, 4134),
          eyeball_blocks=4),
    _Spec(1659, "TANet", "TW", ASRole.EDUCATION, providers=(3462,),
          eyeball_blocks=1),
    _Spec(17717, "Ministry of Education TW", "TW", ASRole.STUB,
          providers=(1659,), eyeball_blocks=1),
    # --- China ---
    _Spec(4134, "China Telecom", "CN", providers=(3491,), peers=(2914, 3356),
          eyeball_blocks=12, stubs=6),
    _Spec(4837, "China Unicom", "CN", providers=(3491,), peers=(4134,),
          eyeball_blocks=8, stubs=4),
    # --- Supporting majors (stability studies & Table 12 hegemons) ---
    _Spec(1136, "KPN", "NL", providers=(1299, 174, 6453),
          eyeball_blocks=4, stubs=6, access=2),
    _Spec(1103, "SURFnet", "NL", ASRole.EDUCATION, providers=(1136,),
          eyeball_blocks=1),
    _Spec(2856, "BT", "GB", providers=(1273, 3356, 2914),
          eyeball_blocks=5, stubs=6, access=2),
    _Spec(30844, "Liquid Telecom", "GB", providers=(1273, 174),
          eyeball_blocks=1, stubs=1),
    _Spec(3320, "Deutsche Telekom", "DE", providers=(1299, 701, 6762),
          eyeball_blocks=6, stubs=6, access=2),
    _Spec(3215, "Orange France", "FR", providers=(5511, 6453),
          eyeball_blocks=5, stubs=4, access=2),
    _Spec(3301, "Telia Sweden", "SE", providers=(1299,),
          eyeball_blocks=3, stubs=3),
    _Spec(3269, "TIM Italia", "IT", providers=(6762, 174),
          eyeball_blocks=4, stubs=3),
    _Spec(3352, "Telefonica de Espana", "ES", providers=(12956, 5511),
          eyeball_blocks=4, stubs=3),
    _Spec(7473, "Singapore Telecom", "SG", providers=(6453, 6461),
          peers=(2914, 3356), eyeball_blocks=2, stubs=2),
    _Spec(16637, "MTN SA", "ZA", providers=(1273, 3356),
          eyeball_blocks=3, stubs=3),
    _Spec(37662, "WIOCC", "MU", providers=(16637, 1299),
          eyeball_blocks=1, stubs=1),
    _Spec(9498, "Bharti Airtel", "IN", providers=(6453, 1299),
          eyeball_blocks=6, stubs=4),
    _Spec(4230, "Claro Brasil", "BR", providers=(3356, 12956, 6762),
          eyeball_blocks=5, stubs=5, access=2),
    _Spec(6057, "Antel Uruguay", "BR", providers=(4230,),
          eyeball_blocks=1, stubs=1),
)

#: country -> (address /16 blocks, located VPs, collectors, multihop?)
_COUNTRY_PLAN: dict[str, tuple[int, int, int, bool]] = {
    "US": (64, 30, 3, True),
    "NL": (12, 25, 2, False),
    "GB": (14, 15, 2, True),
    "DE": (12, 12, 1, False),
    "BR": (12, 10, 1, False),
    "AU": (23, 14, 1, False),
    "JP": (28, 7, 1, False),
    "RU": (26, 7, 1, False),
    "TW": (19, 7, 1, False),
    "SE": (6, 5, 1, False),
    "FR": (10, 5, 1, False),
    "IT": (8, 5, 1, False),
    "ES": (8, 5, 1, False),
    "SG": (6, 5, 1, False),
    "ZA": (6, 4, 1, False),
    "CN": (24, 0, 0, False),
    "HK": (4, 0, 0, False),
    "IN": (12, 0, 0, False),
    "MU": (3, 0, 0, False),
}

#: ASes hosting a country's first vantage points (major ISPs first, as
#: with real RouteViews/RIS peers); the rest of the pool follows in a
#: deterministic pseudo-shuffled order.
_VP_PREFERRED: dict[str, tuple[int, ...]] = {
    "US": (7922, 20115, 22773, 209, 7018, 11537, 3356, 6939, 701, 174),
    "AU": (1221, 4826, 9443, 7545, 7474, 1221, 9443),
    "JP": (4713, 2516, 17676, 9605, 2907, 4713, 2516),
    "RU": (12389, 20485, 9049, 8359, 3216, 31133, 8402),
    "TW": (3462, 9680, 4780, 9924, 1659, 17717, 3462),
    "NL": (1136, 1103, 20940, 1299, 3356),
    "GB": (2856, 30844, 9002, 1273, 174),
    "DE": (3320, 1299, 701),
    "BR": (4230, 6057),
}

#: minor country -> (primary upstream ASN, secondary upstream ASN | None)
#: encodes Table 12's regional hegemon structure.
_MINOR_PLAN: dict[str, tuple[int, int | None]] = {
    # Oceania: Telstra Global and SingTel (plus U.S. secondaries).
    "NZ": (4637, 3356), "FJ": (4637, None), "PG": (4637, None),
    "NC": (5511, None), "WS": (7473, None),
    # Africa: Liquid (GB), Orange (FR), Sparkle (IT), MTN (ZA), WIOCC (MU).
    "KE": (30844, 3356), "UG": (30844, None), "MA": (5511, None),
    "CI": (5511, None), "TN": (6762, None), "EG": (6762, 5511),
    "NG": (16637, 174), "GH": (16637, None), "TZ": (37662, None),
    "NA": (16637, None),
    # South America: Telefonica + U.S. carriers.
    "AR": (12956, 3356), "CL": (12956, 701), "CO": (12956, 3356),
    "PE": (12956, None), "EC": (12956, 174),
    # North America: U.S. carriers.
    "CA": (3356, 174), "MX": (3356, 701), "PA": (174, None),
    "CR": (701, None), "GT": (3356, None),
    # Asia: SingTel, NTT, TATA; Central Asia buys Russian (Figure 7).
    "TH": (7473, 3356), "MY": (7473, None), "PH": (2914, 3356),
    "VN": (6453, None), "ID": (7473, 2914), "KR": (2914, 3356),
    "AF": (9498, None),
    "KZ": (12389, 20485), "KG": (12389, None), "TJ": (20485, None),
    "TM": (12389, None),
    # Western former-Soviet republics buy European transit (§6.1).
    "UA": (1299, 3320), "BY": (1299, None), "EE": (3301, None),
    "LV": (3301, None), "LT": (1299, None), "MD": (1299, None),
    "UZ": (1299, None), "AM": (1299, None), "GE": (1299, None),
    "AZ": (1299, None),
    # Remaining European minors.
    "PL": (3320, 1299), "PT": (12956, None), "GR": (6762, None),
    "NO": (3301, None), "FI": (3301, None), "HR": (3320, None),
    "GG": (2856, None), "CH": (3320, 1299), "AT": (3320, None),
}

#: Countries whose address space straddles a border: (code, partner,
#: foreign share). Shares of exactly one half fail the 50 % majority
#: threshold (Tables 13–14's worst cases); the graded shares populate
#: the Figure-8 threshold sweep.
_SPLIT_GEOGRAPHY: tuple[tuple[str, str, float], ...] = (
    ("GG", "GB", 0.5),
    ("HR", "AT", 0.45),
    ("NA", "ZA", 0.5),
    ("LT", "LV", 0.4),
    ("MU", "ZA", 0.35),
    ("AF", "IN", 0.5),
)

#: 2023 snapshot edge changes (§6.1 Russia, §6.2 Taiwan).
_EDGES_REMOVED_2023: tuple[tuple[int, int], ...] = (
    (3257, 20485),     # GTT leaves the Russian market (Table 10)
    (4134, 9924),      # China Telecom loses its Taiwanese customer (§6.2)
    (3462, 9680),      # HiNet Data Comm leaves Chunghwa domestic wholesale
)
_EDGES_ADDED_2023: tuple[tuple[str, int, int], ...] = (
    ("p2c", 5511, 12389),   # Orange picks up Russian transit (Table 10)
    ("p2c", 174, 3216),     # Cogent (despite the announcement) gains RU
    ("p2c", 174, 4780),     # Cogent gains Taiwanese transit (Table 11)
    ("p2c", 9505, 9680),    # Data Comm re-homes to Chunghwa Intl
)


def paper_as_names() -> dict[int, str]:
    """ASN → display name for every named AS in the curated world."""
    names = {spec.asn: spec.name for spec in _TIER1 + _CONTENT + _NAMED}
    names[_HURRICANE.asn] = _HURRICANE.name
    return names


def build_paper_world(snapshot: str = SNAPSHOT_2021) -> World:
    """Build the curated world for one snapshot date."""
    if snapshot not in PAPER_SNAPSHOTS:
        raise ValueError(f"unknown snapshot {snapshot!r}; expected {PAPER_SNAPSHOTS}")
    return _PaperBuilder(snapshot).build()


class _PaperBuilder:
    """Deterministic (seedless) assembly of the curated world."""

    _FILLER_BASE = 60000

    def __init__(self, snapshot: str) -> None:
        self.snapshot = snapshot
        self.countries = default_registry()
        self.graph = ASGraph()
        self.collectors = CollectorSet()
        self._next_filler = self._FILLER_BASE
        self._country_ases: dict[str, list[int]] = {}
        self._country_base: dict[str, int] = {}
        self._country_next: dict[str, int] = {}
        self._vp_seq: dict[int, int] = {}
        self._minor_incumbents: dict[str, int] = {}
        codes = sorted(set(_COUNTRY_PLAN) | set(_MINOR_PLAN) | {
            spec.country for spec in _TIER1 + _NAMED + _CONTENT
        } | {_HURRICANE.country})
        for index, code in enumerate(codes):
            if code not in self.countries:
                raise ValueError(f"paper world references unknown country {code}")
            self._country_base[code] = (index + 1) << 24
            self._country_next[code] = 0

    # -- assembly -----------------------------------------------------------

    def build(self) -> World:
        for spec in _TIER1:
            self._add_named(spec)
        clique = [spec.asn for spec in _TIER1]
        for index, left in enumerate(clique):
            for right in clique[index + 1 :]:
                self.graph.add_p2p(left, right)
        self._add_named(_HURRICANE)
        for member in clique:
            self.graph.add_p2p(_HURRICANE.asn, member)
        for spec in _CONTENT:
            self._add_named(spec)
            for member in clique[:8]:
                self.graph.add_p2p(spec.asn, member)
        for spec in _NAMED:
            self._add_named(spec)
        for spec in _TIER1 + (_HURRICANE,) + _NAMED:
            self._wire(spec)
        self._wire_minors()
        self._apply_snapshot()
        self._assign_addresses()
        self._attach_fillers()
        self._place_collectors()
        world = World(
            self.graph, self.countries, self.collectors,
            name=f"paper:{self.snapshot}",
        )
        world.validate()
        return world

    def _add_named(self, spec: _Spec) -> None:
        self.graph.add_as(spec.asn, spec.name, spec.country, spec.role)
        self._country_ases.setdefault(spec.country, []).append(spec.asn)

    def _wire(self, spec: _Spec) -> None:
        for provider in spec.providers:
            if self.graph.relationship(provider, spec.asn) is None:
                self.graph.add_p2c(provider, spec.asn)
        for peer in spec.peers:
            if self.graph.relationship(spec.asn, peer) is None:
                self.graph.add_p2p(spec.asn, peer)

    def _wire_minors(self) -> None:
        for code in sorted(_MINOR_PLAN):
            primary, secondary = _MINOR_PLAN[code]
            incumbent = self._new_filler(f"Incumbent-{code}", code, ASRole.TRANSIT)
            self._minor_incumbents[code] = incumbent
            self.graph.add_p2c(primary, incumbent)
            if secondary is not None:
                self.graph.add_p2c(secondary, incumbent)
            # Hurricane peers broadly, even with small incumbents.
            if incumbent % 3 == 0:
                self.graph.add_p2p(_HURRICANE.asn, incumbent)

    def _apply_snapshot(self) -> None:
        if self.snapshot != SNAPSHOT_2023:
            return
        for provider, customer in _EDGES_REMOVED_2023:
            if self.graph.relationship(provider, customer) is not None:
                self.graph.remove_edge(provider, customer)
        for kind, left, right in _EDGES_ADDED_2023:
            if self.graph.relationship(left, right) is not None:
                continue
            if kind == "p2c":
                self.graph.add_p2c(left, right)
            else:
                self.graph.add_p2p(left, right)

    # -- fillers --------------------------------------------------------------

    def _new_filler(self, name: str, country: str, role: ASRole) -> int:
        asn = self._next_filler
        self._next_filler += 1
        self.graph.add_as(asn, name, country, role)
        self._country_ases.setdefault(country, []).append(asn)
        return asn

    def _attach_fillers(self) -> None:
        """Stub/access customers declared by the named specs."""
        for spec in _TIER1 + (_HURRICANE,) + _NAMED:
            code = "US" if spec.country not in self._country_base else spec.country
            # Named ASes registered abroad (Telstra Global in HK) grow
            # their customer base in their operating market when the
            # spec says so; here fillers live in the registry country.
            code = spec.country
            for index in range(spec.access):
                access = self._new_filler(
                    f"Access-{spec.asn}-{index + 1}", code, ASRole.ACCESS
                )
                self.graph.add_p2c(spec.asn, access)
                prefix = self._take(code, 17)
                if prefix is not None:
                    self.graph.node(access).originate(prefix, code)
            for index in range(spec.stubs):
                stub = self._new_filler(
                    f"Stub-{spec.asn}-{index + 1}", code, ASRole.STUB
                )
                self.graph.add_p2c(spec.asn, stub)
                prefix = self._take(code, 20)
                if prefix is not None:
                    self.graph.node(stub).originate(prefix, code)
        # Minor incumbents and any still-empty AS get infrastructure /24s.
        for code in sorted(self._country_ases):
            for asn in self._country_ases[code]:
                node = self.graph.node(asn)
                if node.role is ASRole.ROUTE_SERVER or node.prefixes:
                    continue
                prefix = self._take(code, 16 if code in _MINOR_PLAN else 24)
                if prefix is None:
                    prefix = self._take(code, 24)
                if prefix is not None:
                    node.originate(prefix, code)

    # -- addresses ---------------------------------------------------------------

    def _take(self, code: str, length: int) -> Prefix | None:
        """Carve the next block of 2^(32-length) addresses from the
        country pool (pools are /8-sized, so exhaustion means a plan
        bug — we return None and let validation in tests catch it)."""
        size = 1 << (32 - length)
        # Align the cursor to the block size so the prefix is canonical.
        cursor = (self._country_next[code] + size - 1) & ~(size - 1)
        block_limit = _COUNTRY_PLAN.get(code, (4, 0, 0, False))[0] << 16
        if cursor + size > block_limit:
            return None
        self._country_next[code] = cursor + size
        return Prefix(4, self._country_base[code] + cursor, length)

    def _assign_addresses(self) -> None:
        for spec in _TIER1 + (_HURRICANE,) + _NAMED:
            code = spec.country
            for index in range(spec.eyeball_blocks):
                prefix = self._take(code, 16)
                if prefix is None:
                    raise ValueError(f"{code}: address plan exhausted at AS{spec.asn}")
                self.graph.node(spec.asn).originate(prefix, code)
                # Carriers announce each aggregate alongside its two /17
                # more-specifics: the covered-prefix filter drops the
                # aggregates (85 % of the paper's filtered set), and the
                # finer granularity keeps RIB churn from deleting whole
                # /16s of a carrier's footprint at once.
                for half in prefix.split():
                    self.graph.node(spec.asn).originate(half, code)
        for asn, code, blocks in _CONTENT_PRESENCE:
            for _ in range(blocks):
                prefix = self._take(code, 16)
                if prefix is not None:
                    self.graph.node(asn).originate(prefix, code)
        # Split-geography prefixes: a configured share of the addresses
        # geolocates across the border; shares of exactly one half fail
        # the strict-majority threshold, graded shares fail only as the
        # threshold tightens (Figure 8). Each country also keeps two
        # clean blocks so its filtered percentage is a fraction, not
        # all-or-nothing.
        for code, partner, share in _SPLIT_GEOGRAPHY:
            incumbent = self._minor_incumbents.get(code)
            if incumbent is None:
                continue
            prefix = self._take(code, 16)
            if prefix is not None:
                self.graph.node(incumbent).originate(
                    prefix, code, foreign_share=share, foreign_country=partner
                )
            for _ in range(2):
                clean = self._take(code, 16)
                if clean is not None:
                    self.graph.node(incumbent).originate(clean, code)

    # -- collectors -----------------------------------------------------------------

    def _vp_ip(self, asn: int) -> str:
        node = self.graph.node(asn)
        if not node.prefixes:
            raise ValueError(f"AS{asn} has no prefix to host a VP")
        base = node.prefixes[0].prefix.first_address()
        self._vp_seq[asn] = self._vp_seq.get(asn, 0) + 1
        return format_address(4, base + 10 + self._vp_seq[asn])

    def _place_collectors(self) -> None:
        tier1_asns = [spec.asn for spec in _TIER1]
        for code in sorted(_COUNTRY_PLAN):
            blocks, vps, n_collectors, multihop = _COUNTRY_PLAN[code]
            if n_collectors == 0:
                continue
            collectors = []
            for index in range(1, n_collectors + 1):
                is_multihop = multihop and index == n_collectors
                collector = Collector(
                    name=f"{code.lower()}-ix-{index}",
                    project=(
                        CollectorProject.ROUTEVIEWS if index % 2
                        else CollectorProject.RIS
                    ),
                    country=code,
                    multihop=is_multihop,
                )
                self.collectors.add(collector)
                collectors.append(collector)
            local = [c for c in collectors if not c.multihop]
            if not local or vps == 0:
                continue
            preferred = [
                asn for asn in _VP_PREFERRED.get(code, ())
                if asn in self.graph and self.graph.node(asn).prefixes
            ]
            rest = [
                asn for asn in self._country_ases.get(code, [])
                if self.graph.node(asn).prefixes and asn not in preferred
            ]
            rest.sort(key=lambda asn: (asn * 2654435761) & 0xFFFFFFFF)
            pool = preferred + rest
            # Big IXPs attract the multinationals as members too.
            if vps >= 12:
                pool.extend(tier1_asns[: vps // 4])
                pool.append(_HURRICANE.asn)
            members: list[int] = []
            while len(members) < vps and pool:
                members.extend(pool[: vps - len(members)])
            for index, asn in enumerate(members[:vps]):
                local[index % len(local)].add_vp(self._vp_ip(asn), asn)
        # Multi-hop collectors pick up far-away peers.
        for collector in self.collectors:
            if not collector.multihop:
                continue
            foreign = [
                asns[0]
                for code, asns in sorted(self._country_ases.items())
                if code != collector.country and asns
                and self.graph.node(asns[0]).prefixes
            ]
            for asn in foreign[:6]:
                collector.add_vp(self._vp_ip(asn), asn)
