"""The :class:`World`: one simulated Internet.

Bundles the AS graph (ground-truth relationships and prefix
originations), the country registry, and the collector/VP ecosystem.
Everything downstream — propagation, RIB generation, geolocation,
sanitization, rankings — consumes a world.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.bgp.collectors import CollectorSet
from repro.net.prefix import Prefix
from repro.topology.countries import CountryRegistry, default_registry
from repro.topology.model import ASGraph, OriginatedPrefix


@dataclass
class World:
    """A simulated Internet: topology + geography + measurement fabric."""

    graph: ASGraph
    countries: CountryRegistry = field(default_factory=default_registry)
    collectors: CollectorSet = field(default_factory=CollectorSet)
    name: str = "world"

    def origins(self) -> list[int]:
        """ASes that originate at least one prefix, sorted."""
        return [asn for asn in self.graph.asns() if self.graph.node(asn).prefixes]

    def originations(self) -> list[tuple[int, OriginatedPrefix]]:
        """Every (origin ASN, origination) pair in deterministic order."""
        return list(self.graph.originations())

    def announced_prefixes(self) -> list[Prefix]:
        """All announced prefixes in deterministic order."""
        return [record.prefix for _, record in self.graph.originations()]

    def vp_asns(self) -> frozenset[int]:
        """ASes hosting at least one vantage point."""
        return self.collectors.vp_asns()

    def validate(self) -> None:
        """Cross-check graph, collectors, and countries.

        Raises ``ValueError`` on: VPs in unknown ASes, collectors or
        originations in unknown countries, or graph invariant failures.
        """
        self.graph.validate()
        for collector in self.collectors:
            if collector.country not in self.countries:
                raise ValueError(
                    f"collector {collector.name} in unknown country {collector.country}"
                )
            for vp in collector.vps:
                if vp.asn not in self.graph:
                    raise ValueError(f"VP {vp.ip} in unknown AS{vp.asn}")
        for asn, record in self.graph.originations():
            if record.country not in self.countries:
                raise ValueError(
                    f"AS{asn} originates {record.prefix} in unknown country "
                    f"{record.country}"
                )
            if record.foreign_country and record.foreign_country not in self.countries:
                raise ValueError(
                    f"AS{asn} origination {record.prefix} references unknown "
                    f"country {record.foreign_country}"
                )

    def fingerprint(self) -> str:
        """A digest of the world's *content* — everything that shapes
        rankings: the AS graph (nodes, roles, originations), the edge
        set with relationship labels, the country registry, and the
        collector/VP fabric.

        ``name`` is deliberately excluded: two worlds with the same
        catalog label but different content must fingerprint apart
        (the serving layer's artifact store keys on this, so a
        regenerated ``name@seed`` world with different content misses
        the cache instead of serving stale rankings), and two
        identical worlds under different labels fingerprint together.
        Floats round-trip through ``repr`` so the digest is value-exact.
        """
        graph = self.graph
        content = {
            "countries": sorted(self.countries.codes()),
            "ases": [
                [
                    node.asn, node.name, node.registry_country,
                    node.role.value,
                    [
                        [
                            str(record.prefix), record.country,
                            repr(record.foreign_share),
                            record.foreign_country or "",
                        ]
                        for record in node.prefixes
                    ],
                ]
                for node in sorted(graph.nodes(), key=lambda n: n.asn)
            ],
            "edges": sorted(
                [left, right, relationship.value]
                for left, right, relationship in graph.edges()
            ),
            "collectors": [
                [
                    collector.name, collector.project.value,
                    collector.country, collector.multihop,
                    [[vp.ip, vp.asn] for vp in collector.vps],
                ]
                for collector in sorted(self.collectors, key=lambda c: c.name)
            ],
        }
        serialized = json.dumps(
            content, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(serialized).hexdigest()[:16]

    def summary(self) -> dict[str, int]:
        """Headline sizes for logging and reports."""
        return {
            "ases": len(self.graph),
            "edges": self.graph.edge_count(),
            "prefixes": len(self.announced_prefixes()),
            "countries": len(self.countries),
            "collectors": len(self.collectors),
            "vps": len(self.collectors.all_vps()),
        }
