"""The :class:`World`: one simulated Internet.

Bundles the AS graph (ground-truth relationships and prefix
originations), the country registry, and the collector/VP ecosystem.
Everything downstream — propagation, RIB generation, geolocation,
sanitization, rankings — consumes a world.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import partial
from typing import Iterator

from repro.bgp.collectors import CollectorSet
from repro.net.prefix import Prefix
from repro.topology.countries import CountryRegistry, default_registry
from repro.topology.model import ASGraph, OriginatedPrefix


@dataclass
class World:
    """A simulated Internet: topology + geography + measurement fabric."""

    graph: ASGraph
    countries: CountryRegistry = field(default_factory=default_registry)
    collectors: CollectorSet = field(default_factory=CollectorSet)
    name: str = "world"

    def origins(self) -> list[int]:
        """ASes that originate at least one prefix, sorted."""
        return [asn for asn in self.graph.asns() if self.graph.node(asn).prefixes]

    def originations(self) -> list[tuple[int, OriginatedPrefix]]:
        """Every (origin ASN, origination) pair in deterministic order."""
        return list(self.graph.originations())

    def announced_prefixes(self) -> list[Prefix]:
        """All announced prefixes in deterministic order."""
        return [record.prefix for _, record in self.graph.originations()]

    def vp_asns(self) -> frozenset[int]:
        """ASes hosting at least one vantage point."""
        return self.collectors.vp_asns()

    def validate(self) -> None:
        """Cross-check graph, collectors, and countries.

        Raises ``ValueError`` on: VPs in unknown ASes, collectors or
        originations in unknown countries, or graph invariant failures.
        """
        self.graph.validate()
        for collector in self.collectors:
            if collector.country not in self.countries:
                raise ValueError(
                    f"collector {collector.name} in unknown country {collector.country}"
                )
            for vp in collector.vps:
                if vp.asn not in self.graph:
                    raise ValueError(f"VP {vp.ip} in unknown AS{vp.asn}")
        for asn, record in self.graph.originations():
            if record.country not in self.countries:
                raise ValueError(
                    f"AS{asn} originates {record.prefix} in unknown country "
                    f"{record.country}"
                )
            if record.foreign_country and record.foreign_country not in self.countries:
                raise ValueError(
                    f"AS{asn} origination {record.prefix} references unknown "
                    f"country {record.foreign_country}"
                )

    def fingerprint(self) -> str:
        """A digest of the world's *content* — everything that shapes
        rankings: the AS graph (nodes, roles, originations), the edge
        set with relationship labels, the country registry, and the
        collector/VP fabric.

        ``name`` is deliberately excluded: two worlds with the same
        catalog label but different content must fingerprint apart
        (the serving layer's artifact store keys on this, so a
        regenerated ``name@seed`` world with different content misses
        the cache instead of serving stale rankings), and two
        identical worlds under different labels fingerprint together.
        Floats round-trip through ``repr`` so the digest is value-exact.

        The digest is computed *streamingly* — the canonical JSON is
        fed to sha256 piecewise (:meth:`_fingerprint_parts`), never
        held as one string — but the bytes hashed are identical to
        serializing the whole content dict with
        ``json.dumps(content, sort_keys=True, separators=(",", ":"))``,
        so fingerprints (and every artifact-store key derived from
        them) are unchanged from the materialized implementation.
        """
        digest = hashlib.sha256()
        for part in self._fingerprint_parts():
            digest.update(part.encode("utf-8"))
        return digest.hexdigest()[:16]

    def _fingerprint_parts(self) -> "Iterator[str]":
        """Canonical-JSON fragments of the fingerprint content, in
        exactly the byte order ``json.dumps(..., sort_keys=True)``
        would emit (top-level keys alphabetical: ases, collectors,
        countries, edges; one fragment per AS / collector keeps the
        working set at one node's originations)."""
        dumps = partial(json.dumps, sort_keys=True, separators=(",", ":"))
        graph = self.graph
        yield '{"ases":['
        for index, node in enumerate(sorted(graph.nodes(), key=lambda n: n.asn)):
            item = [
                node.asn, node.name, node.registry_country,
                node.role.value,
                [
                    [
                        str(record.prefix), record.country,
                        repr(record.foreign_share),
                        record.foreign_country or "",
                    ]
                    for record in node.prefixes
                ],
            ]
            yield ("," if index else "") + dumps(item)
        yield '],"collectors":['
        for index, collector in enumerate(
            sorted(self.collectors, key=lambda c: c.name)
        ):
            item = [
                collector.name, collector.project.value,
                collector.country, collector.multihop,
                [[vp.ip, vp.asn] for vp in collector.vps],
            ]
            yield ("," if index else "") + dumps(item)
        yield '],"countries":'
        yield dumps(sorted(self.countries.codes()))
        yield ',"edges":'
        yield dumps(sorted(
            [left, right, relationship.value]
            for left, right, relationship in graph.edges()
        ))
        yield "}"

    def summary(self) -> dict[str, int]:
        """Headline sizes for logging and reports."""
        return {
            "ases": len(self.graph),
            "edges": self.graph.edge_count(),
            "prefixes": len(self.announced_prefixes()),
            "countries": len(self.countries),
            "collectors": len(self.collectors),
            "vps": len(self.collectors.all_vps()),
        }
