"""The :class:`World`: one simulated Internet.

Bundles the AS graph (ground-truth relationships and prefix
originations), the country registry, and the collector/VP ecosystem.
Everything downstream — propagation, RIB generation, geolocation,
sanitization, rankings — consumes a world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.collectors import CollectorSet
from repro.net.prefix import Prefix
from repro.topology.countries import CountryRegistry, default_registry
from repro.topology.model import ASGraph, OriginatedPrefix


@dataclass
class World:
    """A simulated Internet: topology + geography + measurement fabric."""

    graph: ASGraph
    countries: CountryRegistry = field(default_factory=default_registry)
    collectors: CollectorSet = field(default_factory=CollectorSet)
    name: str = "world"

    def origins(self) -> list[int]:
        """ASes that originate at least one prefix, sorted."""
        return [asn for asn in self.graph.asns() if self.graph.node(asn).prefixes]

    def originations(self) -> list[tuple[int, OriginatedPrefix]]:
        """Every (origin ASN, origination) pair in deterministic order."""
        return list(self.graph.originations())

    def announced_prefixes(self) -> list[Prefix]:
        """All announced prefixes in deterministic order."""
        return [record.prefix for _, record in self.graph.originations()]

    def vp_asns(self) -> frozenset[int]:
        """ASes hosting at least one vantage point."""
        return self.collectors.vp_asns()

    def validate(self) -> None:
        """Cross-check graph, collectors, and countries.

        Raises ``ValueError`` on: VPs in unknown ASes, collectors or
        originations in unknown countries, or graph invariant failures.
        """
        self.graph.validate()
        for collector in self.collectors:
            if collector.country not in self.countries:
                raise ValueError(
                    f"collector {collector.name} in unknown country {collector.country}"
                )
            for vp in collector.vps:
                if vp.asn not in self.graph:
                    raise ValueError(f"VP {vp.ip} in unknown AS{vp.asn}")
        for asn, record in self.graph.originations():
            if record.country not in self.countries:
                raise ValueError(
                    f"AS{asn} originates {record.prefix} in unknown country "
                    f"{record.country}"
                )
            if record.foreign_country and record.foreign_country not in self.countries:
                raise ValueError(
                    f"AS{asn} origination {record.prefix} references unknown "
                    f"country {record.foreign_country}"
                )

    def summary(self) -> dict[str, int]:
        """Headline sizes for logging and reports."""
        return {
            "ases": len(self.graph),
            "edges": self.graph.edge_count(),
            "prefixes": len(self.announced_prefixes()),
            "countries": len(self.countries),
            "collectors": len(self.collectors),
            "vps": len(self.collectors.all_vps()),
        }
