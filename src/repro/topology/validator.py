"""Topology realism validation.

Generated worlds are only useful if they look like the Internet in the
ways the metrics care about. This module computes the structural
statistics the measurement literature checks — degree distributions,
tier composition, customer-cone depth, reachability, multihoming — and
flags violations of the realism envelope, so world configurations can
be vetted before anyone trusts rankings computed on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.model import ASGraph, ASRole
from repro.topology.world import World


@dataclass
class WorldRealismReport:
    """Structural statistics plus any realism warnings."""

    ases: int
    edges: int
    p2c_edges: int
    p2p_edges: int
    clique_size: int
    stub_share: float
    max_degree: int
    mean_degree: float
    #: fraction of non-clique ASes with >= 2 providers
    multihomed_share: float
    #: fraction of ASes that can reach the clique by provider chains
    upstream_connected: float
    #: longest provider chain from any AS up to a provider-free AS
    max_hierarchy_depth: int
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no realism warnings fired."""
        return not self.warnings

    def render(self) -> str:
        """Printable summary."""
        lines = [
            f"ASes: {self.ases}, edges: {self.edges} "
            f"({self.p2c_edges} p2c / {self.p2p_edges} p2p)",
            f"clique: {self.clique_size}, stubs: {100 * self.stub_share:.0f}%, "
            f"degree mean {self.mean_degree:.1f} max {self.max_degree}",
            f"multihomed: {100 * self.multihomed_share:.0f}%, "
            f"upstream-connected: {100 * self.upstream_connected:.0f}%, "
            f"hierarchy depth: {self.max_hierarchy_depth}",
        ]
        for warning in self.warnings:
            lines.append(f"WARNING: {warning}")
        return "\n".join(lines)


def validate_realism(world: World) -> WorldRealismReport:
    """Compute structural statistics and check the realism envelope.

    The envelope is intentionally loose — it catches degenerate worlds
    (no hierarchy, disconnected islands, clique-free economies), not
    stylistic differences:

    * a non-empty, fully-meshed, transit-free clique;
    * most ASes are stubs or access networks (the real Internet is
      ~85 % stub);
    * p2c edges outnumber p2p edges;
    * (almost) every AS reaches the clique by climbing providers;
    * provider chains are shallow (the Internet's hierarchy is ~6 deep).
    """
    graph = world.graph
    asns = graph.asns()
    n = len(asns)
    p2c = sum(1 for _, _, kind in graph.edges() if kind.value == "p2c")
    p2p = graph.edge_count() - p2c
    clique = graph.clique()

    degrees = [graph.degree(asn) for asn in asns]
    stubs = [
        asn for asn in asns
        if graph.node(asn).role in (ASRole.STUB, ASRole.ACCESS)
    ]
    non_clique = [asn for asn in asns if asn not in clique
                  and graph.node(asn).role is not ASRole.ROUTE_SERVER]
    multihomed = sum(1 for asn in non_clique if len(graph.providers_of(asn)) >= 2)

    # Upstream reachability + hierarchy depth via memoised DFS.
    depth_cache: dict[int, int] = {}

    def depth(asn: int) -> int:
        if asn in depth_cache:
            return depth_cache[asn]
        depth_cache[asn] = 0  # break would-be cycles defensively
        providers = graph.providers_of(asn)
        value = 0 if not providers else 1 + max(depth(p) for p in providers)
        depth_cache[asn] = value
        return value

    def reaches_top(asn: int) -> bool:
        stack, seen = [asn], set()
        while stack:
            here = stack.pop()
            if here in clique or (
                not graph.providers_of(here) and graph.peers_of(here)
            ):
                # clique member, or a transit-free AS peering its way in
                return True
            if here in seen:
                continue
            seen.add(here)
            stack.extend(graph.providers_of(here))
        return False

    operational = [
        asn for asn in asns
        if graph.node(asn).role is not ASRole.ROUTE_SERVER
    ]
    connected = sum(1 for asn in operational if reaches_top(asn))
    max_depth = max((depth(asn) for asn in asns), default=0)

    report = WorldRealismReport(
        ases=n,
        edges=graph.edge_count(),
        p2c_edges=p2c,
        p2p_edges=p2p,
        clique_size=len(clique),
        stub_share=len(stubs) / n if n else 0.0,
        max_degree=max(degrees, default=0),
        mean_degree=sum(degrees) / n if n else 0.0,
        multihomed_share=multihomed / len(non_clique) if non_clique else 0.0,
        upstream_connected=connected / len(operational) if operational else 0.0,
        max_hierarchy_depth=max_depth,
    )

    if not clique:
        report.warnings.append("no top-tier clique")
    else:
        for left in clique:
            for right in clique:
                if left < right and graph.relationship(left, right) != "p2p":
                    report.warnings.append(
                        f"clique not fully meshed: AS{left}–AS{right}"
                    )
        for member in clique:
            if graph.providers_of(member):
                report.warnings.append(f"clique member AS{member} buys transit")
    if report.stub_share < 0.3:
        report.warnings.append(
            f"stub/access share {report.stub_share:.0%} is unrealistically low"
        )
    if p2c <= p2p:
        report.warnings.append("peering edges outnumber transit edges")
    if report.upstream_connected < 0.99:
        report.warnings.append(
            f"only {report.upstream_connected:.0%} of ASes reach the top tier"
        )
    if report.max_hierarchy_depth > 10:
        report.warnings.append(
            f"provider chains {report.max_hierarchy_depth} deep (Internet ≈ 6)"
        )
    return report
