"""Seeded generator of country-aware Internet worlds.

Builds an :class:`~repro.topology.world.World` whose structure mirrors
the market shapes the paper's case studies describe:

* a small clique of multinational tier-1 transit providers (US-heavy,
  as in Table 12), fully meshed by settlement-free peering;
* per country, an incumbent carrier — optionally split into separate
  international and domestic ASNs (the Telstra 4637/1221, NTT 2914/4713
  pattern §5) — regional transit providers, access/eyeball networks and
  stubs, with configurable incumbent dominance;
* a liberal-peering transit AS (the Hurricane Electric analogue, §5.4);
* global content ASes registered in the US but originating prefixes
  geolocated in many countries (the Amazon effect, §5.1.2);
* route collectors with vantage points, including multi-hop collectors
  whose VPs cannot be geolocated (Table 1's 21 % rejection);
* an address plan with cross-border prefixes so the 50 %-threshold
  geolocation (§3.2.1, Appendix B) has real work to do.

Everything is driven by a single ``random.Random(seed)``; the same seed
always yields byte-identical worlds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.collectors import Collector, CollectorProject, CollectorSet
from repro.net.asn import is_public_asn
from repro.net.prefix import Prefix, format_address
from repro.topology.countries import CountryRegistry, default_registry
from repro.topology.model import ASGraph, ASNode, ASRole
from repro.topology.profiles import CountryProfile, default_profiles
from repro.topology.world import World

#: Continent → countries whose incumbents act as regional transit hubs
#: for minor countries (reproduces the regional patterns of Table 12).
_REGIONAL_HEGEMONS: dict[str, tuple[str, ...]] = {
    "North America": ("US",),
    "South America": ("ES", "US"),
    "Europe": ("SE", "DE", "NL"),
    "Africa": ("ZA", "MU", "FR", "GB", "IT"),
    "Asia": ("SG", "JP", "IN"),
    "Oceania": ("AU", "US"),
}


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """World-level generation parameters."""

    profiles: dict[str, CountryProfile] = field(default_factory=default_profiles)
    #: home registry countries of the clique members, one entry per member
    clique_homes: tuple[str, ...] = (
        "US", "US", "US", "US", "SE", "FR", "GB", "IT", "DE", "NL", "JP", "ES",
    )
    #: global content/cloud ASes (registered in the US)
    n_content: int = 2
    #: include the liberal-peering transit AS (Hurricane analogue)
    liberal_peer: bool = True
    #: probability an incumbent international AS peers with another one
    incumbent_peering_rate: float = 0.08
    #: probability a clique VP shows up at a large IXP collector
    clique_vp_rate: float = 0.4
    #: countries the content ASes originate prefixes in (when sized for it)
    content_presence_min_blocks: int = 6
    #: also originate a 6to4-style IPv6 twin (2002::/16 mapping) for
    #: every IPv4 origination, enabling family=6 pipeline runs
    ipv6: bool = False

    def __post_init__(self) -> None:
        if not self.clique_homes:
            raise ValueError("need at least one clique member")
        if self.n_content < 0:
            raise ValueError("n_content must be non-negative")


def generate_world(
    config: GeneratorConfig | None = None,
    seed: int = 0,
    countries: CountryRegistry | None = None,
    name: str = "generated",
) -> World:
    """Generate a world; deterministic for a given (config, seed)."""
    builder = _Builder(
        config or GeneratorConfig(),
        countries or default_registry(),
        random.Random(seed),
        name,
    )
    return builder.build()


@dataclass
class _CountryASes:
    """Handles to one country's generated ASes."""

    incumbent_international: int | None = None
    incumbent_domestic: int = 0
    transits: list[int] = field(default_factory=list)
    access: list[int] = field(default_factory=list)
    stubs: list[int] = field(default_factory=list)
    education: int | None = None
    route_server: int | None = None

    def all_operational(self) -> list[int]:
        """Every AS except the route server."""
        out = []
        if self.incumbent_international is not None:
            out.append(self.incumbent_international)
        out.append(self.incumbent_domestic)
        out.extend(self.transits)
        out.extend(self.access)
        out.extend(self.stubs)
        if self.education is not None:
            out.append(self.education)
        return out


class _Builder:
    """Stateful world construction (one-shot; build() once)."""

    def __init__(
        self,
        config: GeneratorConfig,
        countries: CountryRegistry,
        rng: random.Random,
        name: str,
    ) -> None:
        self.config = config
        self.countries = countries
        self.rng = rng
        self.name = name
        self.graph = ASGraph()
        self.collectors = CollectorSet()
        self.clique: list[int] = []
        self.liberal: int | None = None
        self.content: list[int] = []
        self.by_country: dict[str, _CountryASes] = {}
        self._next_asn = 1
        self._vp_ip_seq: dict[int, int] = {}
        self._country_base: dict[str, int] = {}
        self._country_next_block: dict[str, int] = {}
        for index, code in enumerate(sorted(self.config.profiles)):
            if code not in countries:
                raise ValueError(f"profile references unknown country {code}")
            self._country_base[code] = (index + 1) << 24
            self._country_next_block[code] = 0

    # -- public -----------------------------------------------------------

    def build(self) -> World:
        self._build_clique()
        self._build_global_players()
        for code in sorted(self.config.profiles):
            self._build_country(code, self.config.profiles[code])
        self._wire_minor_transit()
        self._wire_incumbent_peering()
        self._wire_global_player_edges()
        self._assign_addresses()
        if self.config.ipv6:
            self._mirror_ipv6()
        self._place_collectors()
        world = World(self.graph, self.countries, self.collectors, self.name)
        world.validate()
        return world

    # -- AS creation -------------------------------------------------------

    def _p2c(self, provider: int, customer: int) -> None:
        """Add a provider→customer edge unless the pair is already related."""
        if self.graph.relationship(provider, customer) is None:
            self.graph.add_p2c(provider, customer)

    def _p2p(self, left: int, right: int) -> None:
        """Add a peering edge unless the pair is already related."""
        if self.graph.relationship(left, right) is None:
            self.graph.add_p2p(left, right)

    def _new_as(self, name: str, country: str, role: ASRole) -> int:
        asn = self._next_asn
        while not is_public_asn(asn):
            asn += 1
        self._next_asn = asn + 1
        self.graph.add_as(asn, name, country, role)
        return asn

    def _build_clique(self) -> None:
        for index, home in enumerate(self.config.clique_homes, start=1):
            if home not in self.countries:
                raise ValueError(f"clique home {home} not in country registry")
            asn = self._new_as(f"Tier1-{home}-{index}", home, ASRole.CLIQUE)
            self.clique.append(asn)
        for left_index, left in enumerate(self.clique):
            for right in self.clique[left_index + 1 :]:
                self._p2p(left, right)

    def _build_global_players(self) -> None:
        if self.config.liberal_peer:
            self.liberal = self._new_as("LiberalPeer-US", "US", ASRole.TRANSIT)
            for member in self.clique:
                self._p2p(self.liberal, member)
        for index in range(1, self.config.n_content + 1):
            asn = self._new_as(f"Cloud-US-{index}", "US", ASRole.CONTENT)
            self.content.append(asn)
            for member in self.clique:
                self._p2p(asn, member)

    def _build_country(self, code: str, profile: CountryProfile) -> None:
        rng = self.rng
        handles = _CountryASes()
        self.by_country[code] = handles

        minor = self._is_minor(profile)
        if profile.incumbent_dual_as:
            handles.incumbent_international = self._new_as(
                f"Incumbent-Intl-{code}", code, ASRole.TRANSIT
            )
            handles.incumbent_domestic = self._new_as(
                f"Incumbent-Dom-{code}", code, ASRole.TRANSIT
            )
            self._p2c(
                handles.incumbent_international, handles.incumbent_domestic
            )
            for member in rng.sample(self.clique, k=min(2, len(self.clique))):
                self._p2c(member, handles.incumbent_international)
        else:
            handles.incumbent_domestic = self._new_as(
                f"Incumbent-{code}", code, ASRole.TRANSIT
            )
            if minor:
                # Minor countries reach the core mostly through a regional
                # hegemon (wired later); only sometimes buy clique transit.
                if rng.random() < 0.25:
                    self._p2c(rng.choice(self.clique), handles.incumbent_domestic)
            else:
                k = min(2 + (profile.n_transit > 2), len(self.clique))
                for member in rng.sample(self.clique, k=k):
                    self._p2c(member, handles.incumbent_domestic)

        entry_points = [
            handles.incumbent_international
            if handles.incumbent_international is not None
            else handles.incumbent_domestic
        ]
        for index in range(1, profile.n_transit + 1):
            transit = self._new_as(f"Transit-{code}-{index}", code, ASRole.TRANSIT)
            handles.transits.append(transit)
            # Every transit buys at least one upstream: the incumbent's
            # international arm, or (outside minor countries) the clique.
            if minor or rng.random() < 0.5:
                self._p2c(rng.choice(entry_points), transit)
            else:
                self._p2c(rng.choice(self.clique), transit)
            if not minor and rng.random() < 0.35:
                self._p2c(rng.choice(self.clique), transit)
        # Domestic transits peer among themselves at the local IXP.
        for left_index, left in enumerate(handles.transits):
            for right in handles.transits[left_index + 1 :]:
                if rng.random() < 0.3 and self.graph.relationship(left, right) is None:
                    self._p2p(left, right)
            if (rng.random() < 0.4
                    and self.graph.relationship(left, handles.incumbent_domestic) is None):
                self._p2p(left, handles.incumbent_domestic)

        providers_pool = [handles.incumbent_domestic] + handles.transits
        for index in range(1, profile.n_access + 1):
            access = self._new_as(f"Access-{code}-{index}", code, ASRole.ACCESS)
            handles.access.append(access)
            self._p2c(self._pick_provider(profile, providers_pool), access)
            if rng.random() < 0.3:
                second = self._pick_provider(profile, providers_pool, exclude=access)
                if self.graph.relationship(second, access) is None:
                    self._p2c(second, access)

        low, high = profile.stub_multihoming
        for index in range(1, profile.n_stub + 1):
            stub = self._new_as(f"Stub-{code}-{index}", code, ASRole.STUB)
            handles.stubs.append(stub)
            count = rng.randint(low, high)
            for _ in range(count):
                provider = self._pick_provider(profile, providers_pool, exclude=stub)
                if self.graph.relationship(provider, stub) is None:
                    self._p2c(provider, stub)

        if profile.has_education:
            education = self._new_as(f"NREN-{code}", code, ASRole.EDUCATION)
            handles.education = education
            self._p2c(handles.incumbent_domestic, education)

        if profile.has_route_server:
            handles.route_server = self._new_as(
                f"IXP-RS-{code}", code, ASRole.ROUTE_SERVER
            )

    def _pick_provider(
        self,
        profile: CountryProfile,
        pool: list[int],
        exclude: int | None = None,
    ) -> int:
        """Incumbent with probability ``incumbent_dominance``, else a
        uniformly random domestic transit."""
        incumbent = pool[0]
        if self.rng.random() < profile.incumbent_dominance:
            choice = incumbent
        else:
            choice = self.rng.choice(pool[1:]) if len(pool) > 1 else incumbent
        if choice == exclude and len(pool) > 1:
            choice = self.rng.choice([asn for asn in pool if asn != exclude])
        return choice

    # -- cross-country wiring ------------------------------------------------

    def _international_entry(self, code: str) -> int:
        handles = self.by_country[code]
        if handles.incumbent_international is not None:
            return handles.incumbent_international
        return handles.incumbent_domestic

    @staticmethod
    def _is_minor(profile: CountryProfile) -> bool:
        """Minor countries have no VPs and only a handful of ASes."""
        return profile.n_vps == 0 and profile.total_ases() <= 12

    def _wire_minor_transit(self) -> None:
        """Minor-country incumbents buy from regional hegemons.

        The cross-border partner hint wins (former-Soviet countries buy
        from Russia); otherwise a continent-level hegemon is used, and a
        clique member is the last resort so nothing ends up stranded.
        """
        for code in sorted(self.config.profiles):
            profile = self.config.profiles[code]
            if not self._is_minor(profile):
                continue
            incumbent = self.by_country[code].incumbent_domestic
            partner = profile.cross_border_partner
            if partner is not None and partner in self.by_country and partner != code:
                self._p2c(self._international_entry(partner), incumbent)
                continue
            continent = self.countries.get(code).continent
            hegemons = [
                hegemon
                for hegemon in _REGIONAL_HEGEMONS.get(continent, ())
                if hegemon in self.by_country and hegemon != code
            ]
            if hegemons:
                hegemon = self.rng.choice(hegemons)
                self._p2c(self._international_entry(hegemon), incumbent)
            elif not self.graph.providers_of(incumbent):
                self._p2c(self.rng.choice(self.clique), incumbent)

    def _wire_incumbent_peering(self) -> None:
        entries = [self._international_entry(code) for code in sorted(self.by_country)]
        for left_index, left in enumerate(entries):
            for right in entries[left_index + 1 :]:
                if self.rng.random() < self.config.incumbent_peering_rate:
                    if self.graph.relationship(left, right) is None:
                        self._p2p(left, right)

    def _wire_global_player_edges(self) -> None:
        rng = self.rng
        for code in sorted(self.by_country):
            entry = self._international_entry(code)
            handles = self.by_country[code]
            if self.liberal is not None:
                if rng.random() < 0.6 and self.graph.relationship(
                    self.liberal, entry
                ) is None:
                    self._p2p(self.liberal, entry)
                for transit in handles.transits:
                    if rng.random() < 0.2:
                        self._p2c(self.liberal, transit)
            for content in self.content:
                if rng.random() < 0.5 and self.graph.relationship(
                    content, entry
                ) is None:
                    self._p2p(content, entry)
        # NRENs peer with each other (research backbone mesh).
        nrens = [
            handles.education
            for handles in self.by_country.values()
            if handles.education is not None
        ]
        for left_index, left in enumerate(sorted(nrens)):
            for right in sorted(nrens)[left_index + 1 :]:
                self._p2p(left, right)

    # -- address plan ----------------------------------------------------------

    def _take_block(self, code: str) -> Prefix | None:
        """The next unallocated /16 in the country pool, if any."""
        profile = self.config.profiles[code]
        index = self._country_next_block[code]
        if index >= profile.address_blocks:
            return None
        self._country_next_block[code] = index + 1
        value = self._country_base[code] + (index << 16)
        return Prefix(4, value, 16)

    def _maybe_cross_border(self, code: str) -> tuple[float, str | None]:
        profile = self.config.profiles[code]
        if self.rng.random() >= profile.cross_border_rate:
            return 0.0, None
        partner = profile.cross_border_partner
        if partner is None:
            others = [c for c in sorted(self.by_country) if c != code]
            partner = self.rng.choice(others)
        return profile.cross_border_share, partner

    def _originate(self, asn: int, prefix: Prefix, code: str) -> None:
        share, partner = self._maybe_cross_border(code)
        self.graph.node(asn).originate(prefix, code, share, partner)

    def _assign_addresses(self) -> None:
        self._assign_global_player_addresses()
        for code in sorted(self.by_country):
            self._assign_country_addresses(code)

    def _assign_global_player_addresses(self) -> None:
        """Clique, liberal-peer, and content ASes originate their own
        space in a dedicated region (200.0.0.0 upward), geolocated to
        their home registry country."""
        players = list(self.clique)
        if self.liberal is not None:
            players.append(self.liberal)
        players.extend(self.content)
        for index, asn in enumerate(players):
            node = self.graph.node(asn)
            home = node.registry_country
            prefix = Prefix(4, (200 + index) << 24, 16)
            node.originate(prefix, home)

    def _assign_country_addresses(self, code: str) -> None:
        profile = self.config.profiles[code]
        handles = self.by_country[code]
        incumbent = handles.incumbent_domestic

        # Reserve the first block for infrastructure /24s, so every AS —
        # including transit ASes in small countries — originates space
        # and can host a vantage point.
        infra_block = self._take_block(code)
        assert infra_block is not None, f"{code} has zero address blocks"
        infra_pool = iter(infra_block.subnets(24))

        # Incumbent's flagship block; also announced as two /17
        # more-specifics so the covered-prefix filter has work to do.
        block = self._take_block(code)
        if block is not None:
            self._originate(incumbent, block, code)
            if profile.address_blocks >= 4:
                for half in block.split():
                    self._originate(incumbent, half, code)

        # Access networks share blocks as /17s — the eyeball space.
        halves: list[Prefix] = []
        for access in handles.access:
            if not halves:
                block = self._take_block(code)
                if block is None:
                    break
                halves = list(block.split())
            self._originate(access, halves.pop(0), code)

        # Stubs get /20s carved out of shared blocks.
        slices: list[Prefix] = []
        for stub in handles.stubs:
            if not slices:
                block = self._take_block(code)
                if block is None:
                    break
                slices = block.subnets(20)
            self._originate(stub, slices.pop(0), code)

        for transit in handles.transits:
            block = self._take_block(code)
            if block is None:
                break
            self._originate(transit, block, code)

        if handles.education is not None:
            block = self._take_block(code)
            if block is not None:
                self._originate(handles.education, block, code)

        # Global content presence: a /18 geolocated here, registered US.
        if (
            self.content
            and profile.address_blocks >= self.config.content_presence_min_blocks
        ):
            block = self._take_block(code)
            if block is not None:
                pieces = block.subnets(18)
                for content, piece in zip(self.content, pieces):
                    self.graph.node(content).originate(piece, code)

        # Whatever remains goes to the incumbent.
        while True:
            block = self._take_block(code)
            if block is None:
                break
            self._originate(incumbent, block, code)

        # Finally, give every still-empty AS an infrastructure /24.
        for asn in handles.all_operational():
            if not self.graph.node(asn).prefixes:
                piece = next(infra_pool, None)
                if piece is None:
                    break
                self._originate(asn, piece, code)

    def _mirror_ipv6(self) -> None:
        """Give every IPv4 origination a 6to4-style IPv6 twin.

        The 2002::/16 mapping embeds the IPv4 network in bits 16–48 of
        the IPv6 prefix, so the twin inherits the v4 plan's geography
        exactly — the family=6 pipeline then ranks a structurally
        identical but separately-measured universe, as IHR does.
        """
        for node in self.graph.nodes():
            twins = []
            for record in node.prefixes:
                v4 = record.prefix
                if v4.version != 4:
                    continue
                value = (0x2002 << 112) | (v4.value << 80)
                twins.append((
                    Prefix(6, value, v4.length + 16),
                    record.country,
                    record.foreign_share,
                    record.foreign_country,
                ))
            for prefix, country, share, foreign in twins:
                node.originate(prefix, country, share, foreign)

    # -- collectors --------------------------------------------------------------

    def _vp_ip(self, asn: int) -> str:
        """A unique VP IP inside the AS's first originated prefix."""
        node = self.graph.node(asn)
        if not node.prefixes:
            raise ValueError(f"AS{asn} has no prefix to host a VP")
        base = node.prefixes[0].prefix.first_address()
        sequence = self._vp_ip_seq.get(asn, 0) + 1
        self._vp_ip_seq[asn] = sequence
        return format_address(4, base + 10 + sequence)

    def _vp_member_pool(self, code: str) -> list[int]:
        handles = self.by_country[code]
        pool = handles.all_operational()
        return [asn for asn in pool if self.graph.node(asn).prefixes]

    def _place_collectors(self) -> None:
        rng = self.rng
        all_codes = sorted(
            code for code in self.by_country if self.config.profiles[code].n_vps > 0
        )
        for code in all_codes:
            profile = self.config.profiles[code]
            collectors: list[Collector] = []
            for index in range(1, profile.n_collectors + 1):
                project = (
                    CollectorProject.ROUTEVIEWS if index % 2 else CollectorProject.RIS
                )
                multihop = profile.has_multihop_collector and index == profile.n_collectors
                collector = Collector(
                    name=f"{code.lower()}-ix-{index}",
                    project=project,
                    country=code,
                    multihop=multihop,
                )
                self.collectors.add(collector)
                collectors.append(collector)
            local = [c for c in collectors if not c.multihop]
            remote = [c for c in collectors if c.multihop]
            self._attach_local_vps(code, profile, local)
            for collector in remote:
                self._attach_multihop_vps(collector)

    def _attach_local_vps(
        self, code: str, profile: CountryProfile, collectors: list[Collector]
    ) -> None:
        if not collectors or profile.n_vps == 0:
            return
        rng = self.rng
        pool = self._vp_member_pool(code)
        # Large IXPs attract multinational members too.
        if profile.n_vps >= 20:
            for member in self.clique:
                if rng.random() < self.config.clique_vp_rate:
                    pool.append(member)
            if self.liberal is not None and self.graph.node(self.liberal).prefixes:
                pool.append(self.liberal)
        rng.shuffle(pool)
        members: list[int] = []
        while len(members) < profile.n_vps:
            # Mostly one VP per AS; reuse ASes only once the pool runs dry
            # (Figure 10: 81 % of VP ASes host exactly one VP).
            members.extend(pool[: profile.n_vps - len(members)])
            if not pool:
                break
        for index, asn in enumerate(members[: profile.n_vps]):
            collector = collectors[index % len(collectors)]
            collector.add_vp(self._vp_ip(asn), asn)

    def _attach_multihop_vps(self, collector: Collector) -> None:
        rng = self.rng
        foreign = [
            handles.transits[0]
            for code, handles in sorted(self.by_country.items())
            if handles.transits and code != collector.country
            and self.graph.node(handles.transits[0]).prefixes
        ]
        count = min(max(2, len(collector.vps) + 3), len(foreign))
        for asn in rng.sample(foreign, k=count):
            collector.add_vp(self._vp_ip(asn), asn)


def iter_world_records(
    config: GeneratorConfig | None = None,
    seed: int = 0,
    countries: CountryRegistry | None = None,
    name: str = "generated",
    *,
    world: World | None = None,
    rib: "object | None" = None,
    tiebreak: str = "hash",
    path_diversity: int = 1,
    workers: int = 1,
    tracer=None,
) -> "object":
    """Stream a generated world's deduplicated RIB records lazily.

    This is the streaming record protocol of the out-of-core engine:
    generate (or accept) a world, propagate routes toward its VP ASes,
    build the daily RIB series, and yield its
    :class:`~repro.bgp.announcement.RibRecord` stream — without ever
    materializing the record list. The stream is seed-deterministic and
    record-for-record identical to running the same stages by hand and
    iterating :meth:`~repro.bgp.rib.RibSeries.records` (the tests in
    ``tests/topology/test_streaming.py`` pin this), so the catalog's
    ``large`` tier can be consumed at bounded memory.

    Propagation holds routes for ``VP ASes × origin ASes`` — medium
    scale even when ``VPs × prefixes`` (the record volume) is in the
    millions; that asymmetry is what makes streaming sufficient.

    ``world`` short-circuits generation (the ``config`` / ``seed`` /
    ``countries`` / ``name`` arguments are then ignored for world
    construction, but ``seed`` still seeds the RIB noise, matching
    :class:`repro.core.pipeline.Pipeline`).
    """
    from repro.bgp.propagation import propagate_all
    from repro.bgp.rib import RibGenerationConfig, generate_rib_days
    from repro.obs.trace import NULL_TRACER

    if tracer is None:
        tracer = NULL_TRACER
    if world is None:
        world = generate_world(config, seed=seed, countries=countries, name=name)
    outcomes = [
        propagate_all(
            world.graph, keep=world.vp_asns(), tiebreak=tiebreak,
            salt=salt, tracer=tracer, workers=workers,
        )
        for salt in range(path_diversity)
    ]
    series = generate_rib_days(
        world,
        outcomes,
        rib if rib is not None else RibGenerationConfig(),
        seed,
        tracer=tracer,
    )
    yield from series.records()
