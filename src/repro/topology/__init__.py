"""Country-aware AS topology: model, registry, generator, curated worlds."""

from repro.topology.countries import (
    CONTINENTS,
    Country,
    CountryRegistry,
    default_registry,
)
from repro.topology.model import (
    ASGraph,
    ASNode,
    ASRole,
    OriginatedPrefix,
    Relationship,
    TopologyError,
)
from repro.topology.generator import GeneratorConfig, generate_world
from repro.topology.profiles import CountryProfile, default_profiles, small_profiles
from repro.topology.validator import WorldRealismReport, validate_realism
from repro.topology.world import World

__all__ = [
    "ASGraph",
    "ASNode",
    "ASRole",
    "CONTINENTS",
    "Country",
    "CountryProfile",
    "CountryRegistry",
    "GeneratorConfig",
    "OriginatedPrefix",
    "Relationship",
    "TopologyError",
    "World",
    "WorldRealismReport",
    "default_profiles",
    "default_registry",
    "generate_world",
    "validate_realism",
    "small_profiles",
]
