"""Per-country market profiles that drive the topology generator.

A profile describes the *shape* of a national market: how many transit,
access, and stub networks exist, whether the incumbent splits domestic
and international transit across two ASNs (the Telstra/NTT pattern the
paper highlights), how much public-BGP visibility the country has
(vantage points), and how messy its address geography is.

The default profile set mirrors the relative proportions of the paper's
Table 4 (in-country VP counts: NL > GB > US > DE > BR > … > JP) at a
scale a laptop can propagate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True, slots=True)
class CountryProfile:
    """Generation parameters for one country's slice of the topology."""

    code: str
    #: incumbent runs separate international + domestic ASNs when True
    incumbent_dual_as: bool = True
    #: share of access/stub transit that flows through the incumbent
    incumbent_dominance: float = 0.5
    #: regional/national transit providers besides the incumbent
    n_transit: int = 2
    #: access (eyeball) networks
    n_access: int = 4
    #: stub (enterprise/edge) networks
    n_stub: int = 10
    #: NREN-style education network present
    has_education: bool = False
    #: number of in-country vantage points (Table 4's "VP IPs" column)
    n_vps: int = 0
    #: number of in-country route collectors VPs attach to
    n_collectors: int = 1
    #: whether one collector is multi-hop (its VPs cannot be geolocated)
    has_multihop_collector: bool = False
    #: /16-equivalent address blocks in the national pool
    address_blocks: int = 8
    #: fraction of prefixes whose addresses partially geolocate abroad
    cross_border_rate: float = 0.05
    #: how much of a cross-border prefix sits abroad (below 0.5 keeps it)
    cross_border_share: float = 0.3
    #: preferred foreign country for cross-border address space
    cross_border_partner: str | None = None
    #: stubs buy transit from this many providers (min, max)
    stub_multihoming: tuple[int, int] = (1, 2)
    #: country hosts an IXP with a route-server ASN
    has_route_server: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.incumbent_dominance <= 1.0:
            raise ValueError(f"incumbent_dominance out of range for {self.code}")
        if self.n_vps < 0 or self.n_collectors < 0:
            raise ValueError(f"negative VP/collector count for {self.code}")
        if self.n_vps > 0 and self.n_collectors == 0:
            raise ValueError(f"{self.code}: VPs without a collector")
        low, high = self.stub_multihoming
        if not 1 <= low <= high:
            raise ValueError(f"bad stub_multihoming for {self.code}")

    def total_ases(self) -> int:
        """ASes this profile will generate (excluding route servers)."""
        incumbent = 2 if self.incumbent_dual_as else 1
        education = 1 if self.has_education else 0
        return incumbent + self.n_transit + self.n_access + self.n_stub + education


def _minor(code: str, **overrides: object) -> CountryProfile:
    """A small country with no public vantage points."""
    base = CountryProfile(
        code=code,
        incumbent_dual_as=False,
        n_transit=1,
        n_access=2,
        n_stub=4,
        n_vps=0,
        n_collectors=0,
        address_blocks=2,
    )
    return replace(base, **overrides)  # type: ignore[arg-type]


def default_profiles() -> dict[str, CountryProfile]:
    """Profile set for the main generated world.

    VP counts follow the paper's Table 4 ordering with the same leaders
    (NL, GB, US, DE, BR) and the same ≥ 7-VP floor for the case-study
    countries (AU, JP, RU, US).
    """
    profiles: dict[str, CountryProfile] = {}

    def add(profile: CountryProfile) -> None:
        profiles[profile.code] = profile

    # The five stability-study countries (paper Table 3).
    add(CountryProfile("NL", n_vps=47, n_collectors=3, has_multihop_collector=True,
                       n_transit=4, n_access=6, n_stub=18, address_blocks=10,
                       has_route_server=True, cross_border_partner="DE"))
    add(CountryProfile("GB", n_vps=35, n_collectors=3, has_multihop_collector=True,
                       n_transit=4, n_access=7, n_stub=20, address_blocks=16,
                       has_route_server=True, cross_border_partner="FR"))
    add(CountryProfile("US", n_vps=34, n_collectors=4, has_multihop_collector=True,
                       incumbent_dual_as=False, incumbent_dominance=0.35,
                       n_transit=8, n_access=14, n_stub=40, address_blocks=64,
                       has_education=True, has_route_server=True,
                       cross_border_partner="CA"))
    add(CountryProfile("DE", n_vps=24, n_collectors=2,
                       n_transit=4, n_access=7, n_stub=18, address_blocks=20,
                       has_route_server=True, cross_border_partner="AT"))
    add(CountryProfile("BR", n_vps=15, n_collectors=2, has_multihop_collector=True,
                       n_transit=3, n_access=6, n_stub=22, address_blocks=18,
                       cross_border_partner="AR"))
    # Remaining Table-4 countries, descending VP counts.
    add(CountryProfile("CH", n_vps=15, n_collectors=2, n_stub=8, address_blocks=4,
                       cross_border_partner="DE"))
    add(CountryProfile("ZA", n_vps=14, n_collectors=1, n_stub=8, address_blocks=5,
                       cross_border_partner="NA"))
    add(CountryProfile("AT", n_vps=13, n_collectors=1, n_stub=8, address_blocks=3,
                       cross_border_partner="DE"))
    add(CountryProfile("SG", n_vps=12, n_collectors=1, n_stub=8, address_blocks=3,
                       cross_border_partner="MY"))
    add(CountryProfile("IT", n_vps=12, n_collectors=1, n_stub=10, address_blocks=9,
                       cross_border_partner="CH"))
    add(CountryProfile("FR", n_vps=11, n_collectors=1, n_stub=10, address_blocks=12,
                       has_education=True, cross_border_partner="ES"))
    add(CountryProfile("AU", n_vps=8, n_collectors=1, incumbent_dominance=0.45,
                       n_transit=3, n_access=6, n_stub=14, address_blocks=8,
                       cross_border_partner="NZ"))
    add(CountryProfile("SE", n_vps=7, n_collectors=1, n_stub=7, address_blocks=4,
                       cross_border_partner="NO"))
    add(CountryProfile("RU", n_vps=7, n_collectors=1, incumbent_dominance=0.4,
                       n_transit=5, n_access=8, n_stub=20, address_blocks=8,
                       cross_border_partner="KZ"))
    add(CountryProfile("ES", n_vps=7, n_collectors=1, n_stub=9, address_blocks=6,
                       cross_border_partner="PT"))
    add(CountryProfile("JP", n_vps=7, n_collectors=1, incumbent_dominance=0.5,
                       n_transit=3, n_access=6, n_stub=12, address_blocks=24,
                       cross_border_partner="KR"))
    # Case-study neighbours and regionally interesting countries.
    add(CountryProfile("TW", n_vps=7, n_collectors=1, incumbent_dominance=0.55,
                       n_transit=2, n_access=5, n_stub=10, address_blocks=6,
                       has_education=True, cross_border_partner="JP"))
    add(CountryProfile("CN", n_vps=0, n_collectors=0, incumbent_dominance=0.7,
                       n_transit=2, n_access=6, n_stub=12, address_blocks=24))
    add(CountryProfile("KR", n_vps=0, n_collectors=0, n_stub=8, address_blocks=8))
    add(CountryProfile("IN", n_vps=0, n_collectors=0, n_transit=3, n_access=6,
                       n_stub=14, address_blocks=12, cross_border_rate=0.25,
                       cross_border_partner="SG"))
    add(CountryProfile("CA", n_vps=0, n_collectors=0, n_stub=8, address_blocks=8,
                       cross_border_rate=0.2, cross_border_partner="US"))
    # Former-Soviet countries that lean on Russian transit (Figure 7).
    for code in ("KZ", "KG", "TJ", "TM"):
        add(_minor(code, cross_border_partner="RU"))
    for code in ("UA", "BY", "EE", "LV", "LT", "MD", "UZ", "AM", "GE", "AZ"):
        add(_minor(code))
    # A sample of minor countries on every continent.
    for code in ("MX", "PA", "CR", "GT", "AR", "CL", "CO", "PE", "EC",
                 "PL", "PT", "GR", "NO", "FI", "HR", "GG",
                 "KE", "UG", "NG", "MA", "CI", "TN", "EG", "MU", "NA", "GH", "TZ",
                 "ID", "TH", "MY", "PH", "VN", "HK", "AF",
                 "NZ", "FJ", "PG", "NC", "WS"):
        add(_minor(code))
    # Countries with notoriously split address geography (Tables 13–14).
    # A cross-border share of exactly one half leaves no majority
    # country, so the 50 % threshold filters the prefix.
    for code, rate, partner in (
        ("AF", 0.30, "IN"),
        ("HR", 0.28, "AT"),
        ("LT", 0.32, "LV"),
        ("GG", 0.25, "GB"),
        ("MU", 0.22, "ZA"),
        ("NA", 0.30, "ZA"),
    ):
        profiles[code] = replace(
            profiles[code],
            address_blocks=4,
            cross_border_rate=rate,
            cross_border_share=0.5,
            cross_border_partner=partner,
        )
    return profiles


def small_profiles() -> dict[str, CountryProfile]:
    """A compact six-country world for tests and the quickstart example."""
    profiles: dict[str, CountryProfile] = {}
    profiles["US"] = CountryProfile(
        "US", incumbent_dual_as=False, incumbent_dominance=0.4,
        n_transit=2, n_access=3, n_stub=6, n_vps=6, n_collectors=2,
        has_multihop_collector=True, address_blocks=12, has_route_server=True,
        cross_border_partner="CA",
    )
    profiles["NL"] = CountryProfile(
        "NL", n_transit=2, n_access=2, n_stub=5, n_vps=8, n_collectors=1,
        address_blocks=4, has_route_server=True, cross_border_partner="DE",
    )
    profiles["AU"] = CountryProfile(
        "AU", incumbent_dominance=0.5, n_transit=2, n_access=2, n_stub=5,
        n_vps=5, n_collectors=1, address_blocks=4, cross_border_partner="NZ",
    )
    profiles["JP"] = CountryProfile(
        "JP", n_transit=1, n_access=2, n_stub=4, n_vps=4, n_collectors=1,
        address_blocks=6, cross_border_partner="KR",
    )
    profiles["DE"] = CountryProfile(
        "DE", n_transit=1, n_access=2, n_stub=4, n_vps=4, n_collectors=1,
        address_blocks=4, cross_border_partner="AT",
    )
    profiles["BR"] = _minor("BR", n_stub=4, cross_border_partner=None)
    return profiles


def large_profiles(
    vp_scale: int = 6, block_scale: int = 8
) -> dict[str, CountryProfile]:
    """The default profile set scaled for the out-of-core ``large`` tier.

    Record volume is VPs × announced prefixes, so this scales the two
    knobs that multiply into it — vantage points and address blocks —
    while leaving every AS count untouched. That keeps propagation
    state (VP ASes × origin ASes) at the default world's size even
    though the record stream grows ~``vp_scale * block_scale``× (past
    five million records at the defaults), which is exactly the
    asymmetry the streaming ingestion path exploits.

    Each country's address pool is one /8 (256 /16 blocks — see
    ``_country_base`` in :mod:`repro.topology.generator`), so scaled
    block counts are clamped to 256 (at the defaults only the largest
    markets hit the clamp).
    """
    if vp_scale < 1 or block_scale < 1:
        raise ValueError("scale factors must be >= 1")
    return {
        code: replace(
            profile,
            n_vps=profile.n_vps * vp_scale,
            address_blocks=min(profile.address_blocks * block_scale, 256),
        )
        for code, profile in default_profiles().items()
    }
