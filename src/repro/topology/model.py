"""The AS-level topology model: nodes, business relationships, graph.

Ground truth for the simulated world. The BGP simulator propagates
routes over this graph; the relationship-inference substrate tries to
recover the labels from paths alone; the geolocation database is
derived from each AS's prefix originations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.net.asn import ASNRegistry, is_public_asn
from repro.net.prefix import Prefix


class TopologyError(ValueError):
    """Raised for structurally invalid topology operations."""


class Relationship(enum.Enum):
    """Business relationship between two adjacent ASes.

    ``P2C`` is directional (provider sells transit to customer);
    ``P2P`` is settlement-free peering, symmetric.
    """

    P2C = "p2c"
    P2P = "p2p"


class ASRole(enum.Enum):
    """Coarse market role of an AS; drives generation and reporting."""

    CLIQUE = "clique"  # tier-1 multinational, full p2p mesh at the top
    TRANSIT = "transit"  # national/regional transit provider
    ACCESS = "access"  # eyeball/access network
    STUB = "stub"  # enterprise/edge, no customers
    CONTENT = "content"  # cloud/CDN, many peers, prefixes in many countries
    EDUCATION = "education"  # NREN-style network
    ROUTE_SERVER = "route_server"  # IXP route server (removed by sanitizer)


@dataclass(frozen=True, slots=True)
class OriginatedPrefix:
    """A prefix an AS announces, with the ground-truth country of its
    addresses.

    ``country`` is where the bulk of addresses live. ``foreign_share``
    (0..1) of addresses instead geolocate to ``foreign_country`` —
    cross-border assignments are what make the 50 %-threshold prefix
    geolocation (§3.2.1) non-trivial.
    """

    prefix: Prefix
    country: str
    foreign_share: float = 0.0
    foreign_country: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.foreign_share < 1.0:
            raise TopologyError(f"foreign_share out of range: {self.foreign_share}")
        if self.foreign_share > 0 and not self.foreign_country:
            raise TopologyError("foreign_share set without foreign_country")
        if self.foreign_country == self.country:
            raise TopologyError("foreign_country equals home country")


@dataclass(slots=True)
class ASNode:
    """An autonomous system in the simulated world.

    ``registry_country`` is where the ASN is registered (what IHR's AHC
    metric keys on); prefixes may geolocate elsewhere (what our metrics
    key on) — the distinction reproduces the paper's Amazon example.
    """

    asn: int
    name: str
    registry_country: str
    role: ASRole = ASRole.STUB
    prefixes: list[OriginatedPrefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not is_public_asn(self.asn):
            raise TopologyError(f"ASN {self.asn} is not publicly assignable")

    def originate(
        self,
        prefix: Prefix | str,
        country: str,
        foreign_share: float = 0.0,
        foreign_country: str | None = None,
    ) -> OriginatedPrefix:
        """Add an origination; returns the record."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        record = OriginatedPrefix(prefix, country, foreign_share, foreign_country)
        self.prefixes.append(record)
        return record

    def originated_prefixes(self) -> list[Prefix]:
        """Just the prefixes, without geography."""
        return [record.prefix for record in self.prefixes]

    def address_count(self) -> int:
        """Total addresses across all originations (overlaps not deduped)."""
        return sum(record.prefix.num_addresses() for record in self.prefixes)

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.name}, {self.registry_country})"


class ASGraph:
    """ASes plus their relationship edges, with consistency invariants.

    Invariants enforced on mutation:
      * both endpoints exist,
      * no self-relationships,
      * at most one relationship per AS pair,
      * ASNs are registered in the attached :class:`ASNRegistry`.
    """

    def __init__(self, registry: ASNRegistry | None = None) -> None:
        self.asn_registry = registry if registry is not None else ASNRegistry()
        self._nodes: dict[int, ASNode] = {}
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._version = 0
        self._p2c_cache: tuple[int, frozenset[tuple[int, int]]] | None = None

    @property
    def version(self) -> int:
        """Monotonic structural version: bumped by every node or edge
        mutation, so derived snapshots (e.g. the propagation adjacency)
        can be cached safely against a mutable graph."""
        return self._version

    # -- nodes -------------------------------------------------------------

    def add_as(
        self,
        asn: int,
        name: str | None = None,
        registry_country: str = "ZZ",
        role: ASRole = ASRole.STUB,
    ) -> ASNode:
        """Create and register an AS; allocates the ASN if needed."""
        if asn in self._nodes:
            raise TopologyError(f"AS{asn} already in graph")
        if not is_public_asn(asn):
            raise TopologyError(f"ASN {asn} is not publicly assignable")
        if not self.asn_registry.is_allocated(asn):
            self.asn_registry.allocate(asn)
        self._version += 1
        node = ASNode(asn, name or f"AS{asn}", registry_country, role)
        self._nodes[asn] = node
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()
        return node

    def remove_as(self, asn: int) -> ASNode:
        """Remove an AS and every relationship it participates in.

        Returns the removed node. The ASN stays allocated in the
        registry (real ASNs do not get recycled when a network dies).
        """
        if asn not in self._nodes:
            raise TopologyError(f"AS{asn} not in graph")
        for provider in list(self._providers[asn]):
            self._customers[provider].discard(asn)
        for customer in list(self._customers[asn]):
            self._providers[customer].discard(asn)
        for peer in list(self._peers[asn]):
            self._peers[peer].discard(asn)
        del self._providers[asn]
        del self._customers[asn]
        del self._peers[asn]
        self._version += 1
        return self._nodes.pop(asn)

    def copy(self) -> "ASGraph":
        """An independent deep-ish copy (nodes shared structurally:
        new adjacency sets, new node objects with shared prefix lists
        copied shallowly)."""
        clone = ASGraph(self.asn_registry)
        for asn, node in self._nodes.items():
            clone._nodes[asn] = ASNode(
                node.asn, node.name, node.registry_country, node.role,
                list(node.prefixes),
            )
        clone._providers = {a: set(s) for a, s in self._providers.items()}
        clone._customers = {a: set(s) for a, s in self._customers.items()}
        clone._peers = {a: set(s) for a, s in self._peers.items()}
        return clone

    def node(self, asn: int) -> ASNode:
        """The node for ``asn``; raises ``KeyError`` when absent."""
        return self._nodes[asn]

    def maybe_node(self, asn: int) -> ASNode | None:
        """The node for ``asn`` or ``None``."""
        return self._nodes.get(asn)

    def asns(self) -> list[int]:
        """All ASNs, sorted."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[ASNode]:
        """All nodes in ASN order."""
        for asn in sorted(self._nodes):
            yield self._nodes[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- edges -------------------------------------------------------------

    def add_p2c(self, provider: int, customer: int) -> None:
        """Record that ``provider`` sells transit to ``customer``."""
        self._check_new_edge(provider, customer)
        self._version += 1
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_p2p(self, left: int, right: int) -> None:
        """Record settlement-free peering between two ASes."""
        self._check_new_edge(left, right)
        self._version += 1
        self._peers[left].add(right)
        self._peers[right].add(left)

    def remove_edge(self, left: int, right: int) -> None:
        """Remove whatever relationship exists between the pair."""
        if self.relationship(left, right) is None:
            raise TopologyError(f"no relationship between AS{left} and AS{right}")
        self._version += 1
        self._customers[left].discard(right)
        self._customers[right].discard(left)
        self._providers[left].discard(right)
        self._providers[right].discard(left)
        self._peers[left].discard(right)
        self._peers[right].discard(left)

    def relationship(self, left: int, right: int) -> str | None:
        """``"p2c"`` (left provides to right), ``"c2p"``, ``"p2p"``, or
        ``None`` as seen from ``left``."""
        if right in self._customers.get(left, ()):
            return "p2c"
        if right in self._providers.get(left, ()):
            return "c2p"
        if right in self._peers.get(left, ()):
            return "p2p"
        return None

    # The structural memos keyed on _version — the p2c edge set below
    # and the external adjacency snapshot in repro.bgp.propagation —
    # read exactly these fields; R011 statically checks that every
    # method mutating one of them also bumps the version.
    # repro: memo-guard version=_version fields=_nodes,_providers,_customers,_peers

    def p2c_edges(self) -> frozenset[tuple[int, int]]:
        """Every (provider, customer) transit pair as a flat edge set.

        ``(a, b) in graph.p2c_edges()`` is exactly
        ``graph.relationship(a, b) == "p2c"`` — a bulk form of the
        oracle interface for hot loops that test many links (the
        transit-suffix walks in :mod:`repro.perf.cache`).

        Memoised against :attr:`version`, so repeated callers on an
        unmutated graph get the *same* frozenset object back — identity
        is a valid cache key for derived per-edge-set state (e.g. the
        path store's bulk suffix starts).
        """
        cached = self._p2c_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        edges = frozenset(
            (provider, customer)
            for provider, customers in self._customers.items()
            for customer in customers
        )
        self._p2c_cache = (self._version, edges)
        return edges

    def providers_of(self, asn: int) -> frozenset[int]:
        """Transit providers of ``asn``."""
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> frozenset[int]:
        """Transit customers of ``asn``."""
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> frozenset[int]:
        """Settlement-free peers of ``asn``."""
        return frozenset(self._peers[asn])

    def neighbors_of(self, asn: int) -> frozenset[int]:
        """All adjacent ASes regardless of relationship."""
        return frozenset(
            self._providers[asn] | self._customers[asn] | self._peers[asn]
        )

    def degree(self, asn: int) -> int:
        """Number of adjacent ASes."""
        return len(self.neighbors_of(asn))

    def transit_degree(self, asn: int) -> int:
        """Number of customers — the degree notion AS-Rank sorts by."""
        return len(self._customers[asn])

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """All edges once each: ``(provider, customer, P2C)`` or
        ``(low, high, P2P)``."""
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield (provider, customer, Relationship.P2C)
        for left in sorted(self._peers):
            for right in sorted(self._peers[left]):
                if left < right:
                    yield (left, right, Relationship.P2P)

    def edge_count(self) -> int:
        """Total number of relationships."""
        return sum(1 for _ in self.edges())

    # -- derived sets --------------------------------------------------------

    def clique(self) -> frozenset[int]:
        """The ground-truth top-tier clique (ASes with role CLIQUE)."""
        return frozenset(
            asn for asn, node in self._nodes.items() if node.role is ASRole.CLIQUE
        )

    def route_servers(self) -> frozenset[int]:
        """IXP route-server ASNs (stripped from paths by the sanitizer)."""
        return frozenset(
            asn for asn, node in self._nodes.items() if node.role is ASRole.ROUTE_SERVER
        )

    def by_role(self, role: ASRole) -> list[int]:
        """ASNs with the given role, sorted."""
        return sorted(asn for asn, node in self._nodes.items() if node.role is role)

    def by_registry_country(self, code: str) -> list[int]:
        """ASNs registered in a country (what AHC keys on), sorted."""
        return sorted(
            asn for asn, node in self._nodes.items() if node.registry_country == code
        )

    def originations(self) -> Iterator[tuple[int, OriginatedPrefix]]:
        """Every (origin ASN, origination record) pair."""
        for asn in sorted(self._nodes):
            for record in self._nodes[asn].prefixes:
                yield (asn, record)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        Verifies relationship symmetry and that the provider→customer
        digraph is acyclic (a cyclic transit economy is nonsense and
        breaks valley-free propagation).
        """
        for asn in self._nodes:
            for provider in self._providers[asn]:
                if asn not in self._customers[provider]:
                    raise TopologyError(f"asymmetric p2c: {provider}->{asn}")
            for peer in self._peers[asn]:
                if asn not in self._peers[peer]:
                    raise TopologyError(f"asymmetric p2p: {asn}--{peer}")
        self._check_acyclic()

    # -- internals -------------------------------------------------------------

    def _check_new_edge(self, left: int, right: int) -> None:
        if left == right:
            raise TopologyError(f"self relationship on AS{left}")
        for asn in (left, right):
            if asn not in self._nodes:
                raise TopologyError(f"AS{asn} not in graph")
        if self.relationship(left, right) is not None:
            raise TopologyError(
                f"AS{left} and AS{right} already related "
                f"({self.relationship(left, right)})"
            )

    def _check_acyclic(self) -> None:
        state: dict[int, int] = {}  # 0 = visiting, 1 = done

        def visit(start: int) -> None:
            stack: list[tuple[int, Iterator[int]]] = [
                (start, iter(sorted(self._customers[start])))
            ]
            state[start] = 0
            while stack:
                asn, it = stack[-1]
                advanced = False
                for customer in it:
                    mark = state.get(customer)
                    if mark == 0:
                        raise TopologyError(f"p2c cycle through AS{customer}")
                    if mark is None:
                        state[customer] = 0
                        stack.append(
                            (customer, iter(sorted(self._customers[customer])))
                        )
                        advanced = True
                        break
                if not advanced:
                    state[asn] = 1
                    stack.pop()

        for asn in self._nodes:
            if asn not in state:
                visit(asn)
