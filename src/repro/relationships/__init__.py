"""AS relationship inference (Luckie 2013 style) and its validation."""

from repro.relationships.inference import (
    InferredRelationships,
    infer_clique,
    infer_relationships,
    transit_degrees,
)
from repro.relationships.validation import RelationshipValidation, validate_inference

__all__ = [
    "InferredRelationships",
    "RelationshipValidation",
    "infer_clique",
    "infer_relationships",
    "transit_degrees",
    "validate_inference",
]
