"""Validating inferred relationships against generator ground truth.

The paper leans on CAIDA's validated relationship inferences; our
substrate lets us measure exactly how good (or bad) our re-implemented
inference is, because the generator knows every true label.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relationships.inference import InferredRelationships
from repro.topology.model import ASGraph


@dataclass(frozen=True, slots=True)
class RelationshipValidation:
    """Confusion summary over the links the inference labelled."""

    total_links: int
    correct: int
    p2c_as_p2p: int
    p2p_as_p2c: int
    flipped_p2c: int
    unknown_truth: int
    clique_precision: float
    clique_recall: float

    @property
    def accuracy(self) -> float:
        """Fraction of labelled links with the true label."""
        graded = self.total_links - self.unknown_truth
        return self.correct / graded if graded else 0.0


def validate_inference(
    inferred: InferredRelationships, graph: ASGraph
) -> RelationshipValidation:
    """Grade every inferred link against the graph's true labels."""
    correct = 0
    p2c_as_p2p = 0
    p2p_as_p2c = 0
    flipped = 0
    unknown = 0
    total = 0
    for (low, high), label in inferred.labels.items():
        total += 1
        if low not in graph or high not in graph:
            unknown += 1
            continue
        truth = graph.relationship(low, high)
        if truth is None:
            unknown += 1
        elif truth == label:
            correct += 1
        elif truth == "p2p":
            p2p_as_p2c += 1
        elif label == "p2p":
            p2c_as_p2p += 1
        else:
            flipped += 1

    true_clique = graph.clique()
    inferred_clique = inferred.clique
    overlap = len(true_clique & inferred_clique)
    precision = overlap / len(inferred_clique) if inferred_clique else 0.0
    recall = overlap / len(true_clique) if true_clique else 0.0
    return RelationshipValidation(
        total_links=total,
        correct=correct,
        p2c_as_p2p=p2c_as_p2p,
        p2p_as_p2c=p2p_as_p2c,
        flipped_p2c=flipped,
        unknown_truth=unknown,
        clique_precision=precision,
        clique_recall=recall,
    )
