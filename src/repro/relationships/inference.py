"""Inference of AS business relationships from observed paths.

A compact implementation of the core ideas of Luckie et al. 2013 (the
algorithm behind CAIDA's AS Rank, which the paper reuses, §1.1):

1. **Transit degree.** For every AS, count the distinct neighbors it
   appears to carry traffic between (its neighbors when it occupies an
   interior path position). High transit degree ≈ big transit provider.

2. **Clique inference.** The top of the hierarchy is a set of mutually
   peering, transit-free ASes. We take the highest-transit-degree
   candidates, drop any candidate with *provider evidence* — valley-free
   export rules mean a path fragment ``a b X`` with two other top
   candidates ``a b`` in front of ``X`` can only exist if ``b`` learned
   ``X``'s routes from a customer branch, i.e. ``X`` buys transit — and
   greedily grow a clique through observed top-candidate adjacencies.

3. **Peak-and-witness link labelling.** On a valley-free path, the
   highest-transit-degree AS approximates the peak. Each directed link
   occurrence votes customer-to-provider before the peak and
   provider-to-customer after it. Votes alone mislabel peer links
   between unequal-degree ASes, so two stronger signals override them:

   * a **descent witness** — an occurrence ``x A B`` where ``x`` has a
     higher transit degree than ``A`` — proves traffic was already
     descending into ``A``, so ``A → B`` is provider→customer
     (peer links only ever appear at the very top of a path);
   * links with **no witness in either direction** that connect ASes of
     comparable transit degree are peaks themselves: peering.

The result quacks like :class:`repro.core.sanitize.RelationshipOracle`,
so cone/CTI computations run unchanged on inferred labels, and
``repro.relationships.validation`` quantifies the inference error
against the generator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.net.aspath import ASPath

#: min(deg)/max(deg) above which an unwitnessed link is called peering.
_PEER_DEGREE_RATIO = 0.2


def transit_degrees(paths: Iterable[ASPath]) -> dict[int, int]:
    """Distinct transit neighbors per AS (interior positions only)."""
    neighbors: dict[int, set[int]] = {}
    for path in paths:
        asns = path.asns
        for index in range(1, len(asns) - 1):
            here = asns[index]
            bucket = neighbors.setdefault(here, set())
            bucket.add(asns[index - 1])
            bucket.add(asns[index + 1])
    return {asn: len(bucket) for asn, bucket in neighbors.items()}


def infer_clique(
    paths: list[ASPath],
    degrees: dict[int, int] | None = None,
    candidates: int = 25,
) -> frozenset[int]:
    """The inferred top-tier clique.

    Takes the ``candidates`` highest-transit-degree ASes, drops those
    with *provider evidence* — a path fragment ``a b X`` where both
    ``a`` and ``b`` have higher transit degree than ``X``; on a
    valley-free path that shape means traffic descended through two
    bigger ASes into ``X``, which a transit-free AS can never exhibit
    (its routes would have had to cross two peer links) — and returns
    the maximum clique of the survivors' path-adjacency graph,
    preferring larger cliques, then higher total transit degree.
    """
    if degrees is None:
        degrees = transit_degrees(paths)
    if not degrees:
        return frozenset()
    top = [
        asn
        for asn, _ in sorted(degrees.items(), key=lambda kv: (-kv[1], kv[0]))[
            :candidates
        ]
    ]
    top_set = set(top)
    adjacent: dict[int, set[int]] = {asn: set() for asn in top}
    has_provider: set[int] = set()
    for path in paths:
        asns = path.asns
        for left, right in zip(asns, asns[1:]):
            if left in top_set and right in top_set and left != right:
                adjacent[left].add(right)
                adjacent[right].add(left)
        for index in range(2, len(asns)):
            here = asns[index]
            if here not in top_set:
                continue
            before, above = asns[index - 1], asns[index - 2]
            here_degree = degrees.get(here, 0)
            if (
                len({here, before, above}) == 3
                and degrees.get(before, 0) > here_degree
                and degrees.get(above, 0) > here_degree
            ):
                has_provider.add(here)
    survivors = [asn for asn in top if asn not in has_provider]
    return _max_clique(survivors, adjacent, degrees)


def _max_clique(
    survivors: list[int],
    adjacent: dict[int, set[int]],
    degrees: dict[int, int],
) -> frozenset[int]:
    """Largest clique (ties broken by total transit degree) via
    Bron–Kerbosch over the survivor adjacency graph."""
    allowed = set(survivors)
    best: tuple[int, int, tuple[int, ...]] = (0, 0, ())

    def extend(clique: list[int], candidates: set[int]) -> None:
        nonlocal best
        if not candidates:
            score = (len(clique), sum(degrees.get(a, 0) for a in clique))
            if score > best[:2]:
                best = (score[0], score[1], tuple(sorted(clique)))
            return
        # Classic pivoting keeps this tractable at 25 candidates.
        pivot = max(candidates, key=lambda a: len(adjacent[a] & candidates))
        for asn in sorted(candidates - adjacent[pivot]):
            extend(clique + [asn], candidates & adjacent[asn])
            candidates = candidates - {asn}

    extend([], allowed)
    return frozenset(best[2])


@dataclass
class InferredRelationships:
    """Inferred relationship table with the oracle interface."""

    clique: frozenset[int]
    #: (low_asn, high_asn) -> "p2c" (low provides), "c2p", or "p2p"
    labels: dict[tuple[int, int], str] = field(default_factory=dict)

    def relationship(self, left: int, right: int) -> str | None:
        """Label as seen from ``left`` (oracle interface)."""
        if left == right:
            return None
        if left < right:
            return self.labels.get((left, right))
        label = self.labels.get((right, left))
        if label == "p2c":
            return "c2p"
        if label == "c2p":
            return "p2c"
        return label

    def edge_count(self) -> int:
        """Number of labelled AS pairs."""
        return len(self.labels)

    def p2c_edges(self) -> frozenset[tuple[int, int]]:
        """Every inferred (provider, customer) pair as a flat edge set.

        ``(a, b) in table.p2c_edges()`` is exactly
        ``table.relationship(a, b) == "p2c"`` — the same bulk oracle
        form :meth:`repro.topology.model.ASGraph.p2c_edges` provides.
        """
        edges: list[tuple[int, int]] = []
        for (low, high), label in self.labels.items():
            if label == "p2c":
                edges.append((low, high))
            elif label == "c2p":
                edges.append((high, low))
        return frozenset(edges)

    def set_label(self, left: int, right: int, label: str) -> None:
        """Record a relationship as seen from ``left``."""
        if label not in ("p2c", "c2p", "p2p"):
            raise ValueError(f"bad label {label!r}")
        if left > right:
            left, right = right, left
            if label == "p2c":
                label = "c2p"
            elif label == "c2p":
                label = "p2c"
        self.labels[(left, right)] = label


def infer_relationships(
    paths: Iterable[ASPath],
    candidates: int = 20,
) -> InferredRelationships:
    """Infer clique and per-link labels from clean AS paths."""
    materialized = [path.collapse_prepending() for path in paths]
    degrees = transit_degrees(materialized)
    clique = infer_clique(materialized, degrees, candidates)

    # Per undirected link (low, high): peak votes and descent witnesses.
    votes: dict[tuple[int, int], list[int]] = {}  # [low-is-customer, low-is-provider]
    witness: dict[tuple[int, int], list[bool]] = {}  # [low provides, high provides]

    def key_of(a: int, b: int) -> tuple[tuple[int, int], bool]:
        """Normalized key plus whether (a, b) matches (low, high)."""
        return ((a, b), True) if a < b else ((b, a), False)

    for path in materialized:
        asns = path.asns
        if len(asns) < 2:
            continue
        peak = max(range(len(asns)), key=lambda i: (degrees.get(asns[i], 0), -i))
        for index in range(len(asns) - 1):
            left, right = asns[index], asns[index + 1]
            key, in_order = key_of(left, right)
            bucket = votes.setdefault(key, [0, 0])
            if index + 1 <= peak:
                # climbing: left is the customer side
                bucket[0 if in_order else 1] += 1
            else:
                bucket[1 if in_order else 0] += 1
            if index > 0 and degrees.get(asns[index - 1], 0) > degrees.get(left, 0):
                # Traffic was already descending into `left`, so
                # left -> right must be provider -> customer.
                marks = witness.setdefault(key, [False, False])
                marks[0 if in_order else 1] = True

    inferred = InferredRelationships(clique=clique)
    for key, (low_customer, low_provider) in votes.items():
        low, high = key
        low_in = low in clique
        high_in = high in clique
        if low_in and high_in:
            label = "p2p"
        elif low_in:
            label = "p2c"
        elif high_in:
            label = "c2p"
        else:
            marks = witness.get(key, [False, False])
            if marks[0] != marks[1]:
                label = "p2c" if marks[0] else "c2p"
            elif not marks[0] and not marks[1] and _comparable(degrees, low, high):
                label = "p2p"
            else:
                label = "c2p" if low_customer >= low_provider else "p2c"
        inferred.labels[key] = label
    for member in clique:
        for other in clique:
            if member < other:
                inferred.labels[(member, other)] = "p2p"
    return inferred


def _comparable(degrees: dict[int, int], left: int, right: int) -> bool:
    """Whether two ASes have transit degrees close enough to peer."""
    low = min(degrees.get(left, 0), degrees.get(right, 0))
    high = max(degrees.get(left, 0), degrees.get(right, 0))
    if high == 0:
        return False
    return low / high >= _PEER_DEGREE_RATIO
