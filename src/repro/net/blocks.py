"""Splitting announced prefixes into non-overlapping most-specific blocks.

Paper §3.2.1: "Before we geolocate the prefixes, we split them into
non-overlapping blocks of addresses mapped to their most specific
prefix. We then filter prefixes that are completely covered by more
specifics."

A :class:`Block` is a maximal CIDR chunk of address space whose
most-specific covering announcement is :attr:`Block.owner`. The union
of all blocks equals the union of all announced prefixes, and blocks
never overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.net.prefix import Prefix
from repro.net.prefixtrie import PrefixTrie


@dataclass(frozen=True, slots=True)
class Block:
    """A CIDR chunk owned by its most specific announced prefix."""

    prefix: Prefix
    owner: Prefix

    def num_addresses(self) -> int:
        """Addresses inside the block."""
        return self.prefix.num_addresses()

    def __str__(self) -> str:
        return f"{self.prefix} (owner {self.owner})"


def build_trie(prefixes: Iterable[Prefix], version: int = 4) -> PrefixTrie[Prefix]:
    """Index prefixes of one family into a trie keyed by themselves."""
    trie: PrefixTrie[Prefix] = PrefixTrie(version)
    for prefix in prefixes:
        if prefix.version == version:
            trie.insert(prefix, prefix)
    return trie


def covered_by_more_specifics(
    prefixes: Sequence[Prefix], version: int = 4
) -> set[Prefix]:
    """The subset of ``prefixes`` whose addresses are entirely covered by
    strictly more-specific prefixes in the same set.

    These carry no addresses of their own once blocks are assigned, so
    the paper removes them (and the paths to them) before geolocation.
    """
    trie = build_trie(prefixes, version)
    return {
        prefix
        for prefix in prefixes
        if prefix.version == version and trie.is_covered_by_more_specifics(prefix)
    }


def split_into_blocks(prefixes: Sequence[Prefix], version: int = 4) -> list[Block]:
    """Decompose announced prefixes into non-overlapping owned blocks.

    For each announced prefix, the addresses not claimed by any more
    specific announcement are emitted as maximal CIDR blocks owned by
    that prefix. Runs in O(total · depth) via a single recursive sweep
    of the combined trie.
    """
    unique = {prefix for prefix in prefixes if prefix.version == version}
    if not unique:
        return []
    trie = build_trie(unique, version)
    blocks = [Block(block, owner) for block, owner in trie.decompose()]
    blocks.sort(key=lambda block: block.prefix.sort_key())
    return blocks


def total_addresses(blocks: Iterable[Block]) -> int:
    """Sum of addresses across blocks (no double counting by design)."""
    return sum(block.num_addresses() for block in blocks)
