"""Autonomous System Numbers and an IANA-like allocation registry.

The sanitization pipeline (paper §3.1, Table 1) discards AS paths that
contain ASNs "that IANA reports as unassigned". Since we have no live
IANA registry, :class:`ASNRegistry` plays that role for the simulated
world: the topology generator allocates ASNs through it, and the
anomaly injector deliberately inserts unallocated ASNs so the filter
has something real to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Special-purpose ASNs that are never assignable (subset of RFC 7249 family).
RESERVED_ASNS: frozenset[int] = frozenset({0, 112, 23456, 65535, 4294967295})

#: AS_TRANS, used by 2-byte speakers for 4-byte peers (RFC 6793).
AS_TRANS = 23456

#: Private-use ASN ranges (RFC 6996).
PRIVATE_ASN_RANGES: tuple[tuple[int, int], ...] = (
    (64512, 65534),
    (4200000000, 4294967294),
)

#: Documentation-only ASN ranges (RFC 5398).
_DOCUMENTATION_RANGES: tuple[tuple[int, int], ...] = (
    (64496, 64511),
    (65536, 65551),
)

_MAX_ASN = 4294967295


def is_private_asn(asn: int) -> bool:
    """Whether ``asn`` falls in an RFC 6996 private-use range."""
    return any(low <= asn <= high for low, high in PRIVATE_ASN_RANGES)


def is_documentation_asn(asn: int) -> bool:
    """Whether ``asn`` falls in an RFC 5398 documentation range."""
    return any(low <= asn <= high for low, high in _DOCUMENTATION_RANGES)


def is_reserved_asn(asn: int) -> bool:
    """Whether ``asn`` is special-purpose, private, or documentation-only."""
    return asn in RESERVED_ASNS or is_private_asn(asn) or is_documentation_asn(asn)


def is_public_asn(asn: int) -> bool:
    """Whether ``asn`` is syntactically valid and publicly assignable."""
    return 0 < asn <= _MAX_ASN and not is_reserved_asn(asn)


@dataclass
class ASNRegistry:
    """Tracks which public ASNs the simulated IANA has assigned.

    The registry is the source of truth for the "unallocated" filter:
    a path mentioning an ASN outside :attr:`allocated` is rejected the
    same way the paper rejects paths with IANA-unassigned ASNs.
    """

    allocated: set[int] = field(default_factory=set)
    _next_candidate: int = 1

    def allocate(self, asn: int | None = None) -> int:
        """Assign a specific public ASN, or the lowest free one.

        Raises ``ValueError`` for reserved, out-of-range, or
        already-assigned ASNs.
        """
        if asn is None:
            asn = self._find_free()
        if not is_public_asn(asn):
            raise ValueError(f"ASN {asn} is reserved or out of range")
        if asn in self.allocated:
            raise ValueError(f"ASN {asn} already allocated")
        self.allocated.add(asn)
        return asn

    def allocate_many(self, count: int) -> list[int]:
        """Assign ``count`` fresh ASNs in ascending order."""
        return [self.allocate() for _ in range(count)]

    def is_allocated(self, asn: int) -> bool:
        """Whether the simulated IANA has assigned this ASN."""
        return asn in self.allocated

    def unallocated_sample(self, count: int, start: int = 100000) -> list[int]:
        """Deterministic public-but-unassigned ASNs for anomaly injection."""
        sample: list[int] = []
        candidate = start
        while len(sample) < count:
            if candidate > _MAX_ASN:
                raise ValueError("exhausted ASN space looking for unallocated ASNs")
            if is_public_asn(candidate) and candidate not in self.allocated:
                sample.append(candidate)
            candidate += 1
        return sample

    def update(self, asns: Iterable[int]) -> None:
        """Bulk-register externally chosen ASNs (e.g. a curated world)."""
        for asn in asns:
            if not is_public_asn(asn):
                raise ValueError(f"ASN {asn} is reserved or out of range")
            self.allocated.add(asn)

    def _find_free(self) -> int:
        candidate = self._next_candidate
        while candidate in self.allocated or not is_public_asn(candidate):
            candidate += 1
        self._next_candidate = candidate + 1
        return candidate

    def __contains__(self, asn: int) -> bool:
        return asn in self.allocated

    def __len__(self) -> int:
        return len(self.allocated)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.allocated))
