"""CIDR set algebra: exact unions, intersections, and differences of
prefix collections.

Used wherever "how much address space" questions need to be exact in
the presence of overlapping announcements — country totals, cone
overlap analysis, and the geolocation substrate's accounting. A
:class:`PrefixSet` canonicalises to the minimal list of disjoint,
maximally-aggregated CIDR blocks, so equality means set-of-addresses
equality regardless of how the set was built.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.net.prefix import Prefix, PrefixError


class PrefixSet:
    """An immutable set of IP addresses stored as canonical CIDR blocks."""

    __slots__ = ("_version", "_blocks")

    def __init__(self, prefixes: Iterable[Prefix] = (), version: int = 4) -> None:
        self._version = version
        intervals = []
        for prefix in prefixes:
            if prefix.version != version:
                raise PrefixError(
                    f"v{prefix.version} prefix in v{version} PrefixSet: {prefix}"
                )
            intervals.append((prefix.first_address(), prefix.last_address()))
        self._blocks: tuple[Prefix, ...] = tuple(
            self._to_cidrs(self._merge(intervals), version)
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def parse(cls, *texts: str, version: int = 4) -> "PrefixSet":
        """Build from prefix literals."""
        return cls((Prefix.parse(t) for t in texts), version)

    @classmethod
    def _from_intervals(
        cls, intervals: list[tuple[int, int]], version: int
    ) -> "PrefixSet":
        new = cls.__new__(cls)
        new._version = version
        new._blocks = tuple(cls._to_cidrs(cls._merge(intervals), version))
        return new

    # -- interval plumbing --------------------------------------------------------

    @staticmethod
    def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
        if not intervals:
            return []
        intervals.sort()
        merged = [intervals[0]]
        for low, high in intervals[1:]:
            last_low, last_high = merged[-1]
            if low <= last_high + 1:
                merged[-1] = (last_low, max(last_high, high))
            else:
                merged.append((low, high))
        return merged

    @staticmethod
    def _to_cidrs(
        intervals: list[tuple[int, int]], version: int = 4
    ) -> Iterator[Prefix]:
        bits = 32 if version == 4 else 128
        for low, high in intervals:
            cursor = low
            while cursor <= high:
                # Largest block aligned at cursor that fits in the range.
                max_align = cursor & -cursor if cursor else 1 << bits
                span = high - cursor + 1
                size = 1 << (span.bit_length() - 1)
                block = min(max_align, size)
                length = bits - (block.bit_length() - 1)
                yield Prefix(version, cursor, length)
                cursor += block

    def _intervals(self) -> list[tuple[int, int]]:
        return [(p.first_address(), p.last_address()) for p in self._blocks]

    # -- queries ----------------------------------------------------------------

    @property
    def version(self) -> int:
        """Address family (4 or 6)."""
        return self._version

    def blocks(self) -> tuple[Prefix, ...]:
        """Canonical disjoint CIDR blocks, ascending."""
        return self._blocks

    def num_addresses(self) -> int:
        """Total addresses in the set."""
        return sum(p.num_addresses() for p in self._blocks)

    def contains_address(self, value: int) -> bool:
        """Whether the integer address is in the set (binary search)."""
        import bisect

        starts = [p.first_address() for p in self._blocks]
        index = bisect.bisect_right(starts, value) - 1
        if index < 0:
            return False
        return value <= self._blocks[index].last_address()

    def contains(self, prefix: Prefix) -> bool:
        """Whether the whole prefix is inside the set."""
        if prefix.version != self._version:
            return False
        overlap = self & PrefixSet([prefix], self._version)
        return overlap.num_addresses() == prefix.num_addresses()

    def is_empty(self) -> bool:
        """Whether the set holds no addresses."""
        return not self._blocks

    # -- algebra ----------------------------------------------------------------

    def _check(self, other: "PrefixSet") -> None:
        if not isinstance(other, PrefixSet):
            raise TypeError(f"expected PrefixSet, got {type(other).__name__}")
        if other._version != self._version:
            raise PrefixError("mixed address families in PrefixSet operation")

    def __or__(self, other: "PrefixSet") -> "PrefixSet":
        self._check(other)
        return self._from_intervals(
            self._intervals() + other._intervals(), self._version
        )

    def __and__(self, other: "PrefixSet") -> "PrefixSet":
        self._check(other)
        result = []
        mine = self._intervals()
        theirs = other._intervals()
        i = j = 0
        while i < len(mine) and j < len(theirs):
            low = max(mine[i][0], theirs[j][0])
            high = min(mine[i][1], theirs[j][1])
            if low <= high:
                result.append((low, high))
            if mine[i][1] < theirs[j][1]:
                i += 1
            else:
                j += 1
        return self._from_intervals(result, self._version)

    def __sub__(self, other: "PrefixSet") -> "PrefixSet":
        self._check(other)
        result = []
        theirs = other._intervals()
        for low, high in self._intervals():
            cursor = low
            for t_low, t_high in theirs:
                if t_high < cursor or t_low > high:
                    continue
                if t_low > cursor:
                    result.append((cursor, t_low - 1))
                cursor = max(cursor, t_high + 1)
                if cursor > high:
                    break
            if cursor <= high:
                result.append((cursor, high))
        return self._from_intervals(result, self._version)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixSet):
            return NotImplemented
        return self._version == other._version and self._blocks == other._blocks

    def __hash__(self) -> int:
        return hash((self._version, self._blocks))

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self._blocks)

    def __bool__(self) -> bool:
        return bool(self._blocks)

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self._blocks[:4])
        suffix = ", …" if len(self._blocks) > 4 else ""
        return f"PrefixSet([{inner}{suffix}])"
