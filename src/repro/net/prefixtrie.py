"""A binary radix trie over prefixes.

Used by the geolocation pipeline for most-specific matching (splitting
announced prefixes into blocks, §3.2.1) and by the sanitizer to detect
prefixes entirely covered by more-specific announcements (1.2% of the
paper's April 2021 data).

One trie holds one address family; mixing families raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

from repro.net.prefix import Prefix, PrefixError

V = TypeVar("V")


@dataclass(slots=True)
class _Node(Generic[V]):
    prefix: Prefix | None = None
    value: V | None = None
    children: list["_Node[V] | None"] = field(default_factory=lambda: [None, None])


class PrefixTrie(Generic[V]):
    """Maps prefixes to values with longest-prefix-match semantics."""

    def __init__(self, version: int = 4) -> None:
        if version not in (4, 6):
            raise PrefixError(f"unsupported IP version: {version!r}")
        self._version = version
        self._root: _Node[V] = _Node()
        self._size = 0

    @property
    def version(self) -> int:
        """The address family this trie holds (4 or 6)."""
        return self._version

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix) is not None or self._has_exact(prefix)

    # -- mutation ---------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or overwrite the value stored at exactly ``prefix``."""
        node = self._descend_create(prefix)
        if node.prefix is None:
            self._size += 1
        node.prefix = prefix
        node.value = value

    def remove(self, prefix: Prefix) -> V:
        """Remove the entry stored at exactly ``prefix`` and return it.

        Raises ``KeyError`` when absent. Interior nodes are left in
        place; the trie never shrinks structurally (fine for our
        build-once, query-many workloads).
        """
        node = self._descend(prefix)
        if node is None or node.prefix is None:
            raise KeyError(str(prefix))
        assert node.value is not None or node.prefix is not None
        value = node.value
        node.prefix = None
        node.value = None
        self._size -= 1
        return value  # type: ignore[return-value]

    # -- queries ----------------------------------------------------------

    def get(self, prefix: Prefix) -> V | None:
        """The value stored at exactly ``prefix``, else ``None``."""
        node = self._descend(prefix)
        if node is not None and node.prefix == prefix:
            return node.value
        return None

    def longest_match(self, prefix: Prefix) -> tuple[Prefix, V] | None:
        """Most-specific stored prefix containing ``prefix`` (could be it)."""
        self._check_version(prefix)
        node = self._root
        best: tuple[Prefix, V] | None = None
        depth = 0
        while node is not None:
            if node.prefix is not None:
                best = (node.prefix, node.value)  # type: ignore[assignment]
            if depth >= prefix.length:
                break
            node = node.children[prefix.bit_at(depth)]  # type: ignore[assignment]
            depth += 1
        return best

    def lookup_address(self, version: int, value: int) -> tuple[Prefix, V] | None:
        """Most-specific stored prefix containing the integer address."""
        if version != self._version:
            return None
        host = Prefix(version, value, 32 if version == 4 else 128)
        return self.longest_match(host)

    def subtree(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored entries equal to or more specific than ``prefix``."""
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is None:
            return
        yield from self._walk(node)

    def more_specifics(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """Stored entries strictly more specific than ``prefix``."""
        for stored, value in self.subtree(prefix):
            if stored.length > prefix.length:
                yield (stored, value)

    def is_covered_by_more_specifics(self, prefix: Prefix) -> bool:
        """Whether strictly-more-specific stored prefixes cover every
        address of ``prefix`` (the paper filters such prefixes, §3.2.1)."""
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is None:
            return False
        return self._covers(node, at_target=True)

    def decompose(self) -> Iterator[tuple[Prefix, Prefix]]:
        """Yield non-overlapping ``(block, owner)`` CIDR pairs covering all
        stored address space, where ``owner`` is the most specific stored
        prefix containing the block. Single O(nodes) sweep."""
        root_prefix = Prefix(self._version, 0, 0)
        yield from self._decompose(self._root, root_prefix, None)

    def _decompose(
        self, node: _Node[V], here: Prefix, owner: Prefix | None
    ) -> Iterator[tuple[Prefix, Prefix]]:
        if node.prefix is not None:
            owner = node.prefix
        left, right = node.children
        if left is None and right is None:
            if owner is not None:
                yield (here, owner)
            return
        low, high = here.split()
        if left is not None:
            yield from self._decompose(left, low, owner)
        elif owner is not None:
            yield (low, owner)
        if right is not None:
            yield from self._decompose(right, high, owner)
        elif owner is not None:
            yield (high, owner)

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """All stored entries in trie (address) order."""
        yield from self._walk(self._root)

    def keys(self) -> Iterator[Prefix]:
        """All stored prefixes in trie order."""
        for prefix, _ in self._walk(self._root):
            yield prefix

    # -- internals --------------------------------------------------------

    def _check_version(self, prefix: Prefix) -> None:
        if prefix.version != self._version:
            raise PrefixError(
                f"v{prefix.version} prefix in v{self._version} trie: {prefix}"
            )

    def _descend(self, prefix: Prefix) -> _Node[V] | None:
        self._check_version(prefix)
        node: _Node[V] | None = self._root
        for depth in range(prefix.length):
            if node is None:
                return None
            node = node.children[prefix.bit_at(depth)]
        return node

    def _descend_create(self, prefix: Prefix) -> _Node[V]:
        self._check_version(prefix)
        node = self._root
        for depth in range(prefix.length):
            bit = prefix.bit_at(depth)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        return node

    def _has_exact(self, prefix: Prefix) -> bool:
        node = self._descend(prefix)
        return node is not None and node.prefix == prefix

    def _walk(self, node: _Node[V]) -> Iterator[tuple[Prefix, V]]:
        stack: list[_Node[V]] = [node]
        while stack:
            current = stack.pop()
            if current.prefix is not None:
                yield (current.prefix, current.value)  # type: ignore[misc]
            # Push right then left so iteration comes out address-ordered.
            for child in (current.children[1], current.children[0]):
                if child is not None:
                    stack.append(child)

    def _covers(self, node: _Node[V], at_target: bool) -> bool:
        """Whether the subtree below ``node`` fully covers its block using
        stored prefixes strictly below the original target prefix."""
        if not at_target and node.prefix is not None:
            return True
        left, right = node.children
        if left is None or right is None:
            return False
        return self._covers(left, at_target=False) and self._covers(
            right, at_target=False
        )
