"""AS paths as immutable sequences with the hygiene operations the
sanitizer needs: prepending collapse, loop detection, ASN removal.

Convention used throughout the codebase: index 0 is the AS closest to
the vantage point (the VP's own AS), and the last element is the origin
AS of the announced prefix — the same order BGP wire format and MRT
dumps use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


class ASPathError(ValueError):
    """Raised for structurally invalid AS paths."""


@dataclass(frozen=True, slots=True)
class ASPath:
    """An AS-level path from a vantage point toward an origin."""

    asns: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.asns:
            raise ASPathError("empty AS path")
        for asn in self.asns:
            if not isinstance(asn, int) or asn < 0:
                raise ASPathError(f"invalid ASN in path: {asn!r}")

    # -- constructors ---------------------------------------------------

    @classmethod
    def of(cls, *asns: int) -> "ASPath":
        """Build a path from positional ASNs, VP-side first."""
        return cls(tuple(asns))

    @classmethod
    def trusted(cls, asns: tuple[int, ...]) -> "ASPath":
        """Wrap an already-validated non-empty ASN tuple without
        re-running per-element validation.

        Only for callers that hold ASNs proven valid by construction
        (propagated routes, collapsed copies of validated paths) — the
        hot loops build hundreds of thousands of paths per run and the
        public constructor's validation dominates their cost.
        """
        path = object.__new__(cls)
        object.__setattr__(path, "asns", asns)
        return path

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a space-separated path string, e.g. ``"3356 1299 4826"``."""
        parts = text.split()
        if not parts:
            raise ASPathError(f"empty AS path text: {text!r}")
        try:
            return cls(tuple(int(part) for part in parts))
        except ValueError as exc:
            raise ASPathError(f"non-numeric ASN in {text!r}") from exc

    # -- accessors --------------------------------------------------------

    @property
    def collector_side(self) -> int:
        """The AS adjacent to the vantage point (the VP's own AS)."""
        return self.asns[0]

    @property
    def origin(self) -> int:
        """The AS that originated the prefix."""
        return self.asns[-1]

    def links(self) -> Iterator[tuple[int, int]]:
        """Adjacent AS pairs in VP→origin order."""
        return zip(self.asns, self.asns[1:])

    def unique_asns(self) -> frozenset[int]:
        """The set of distinct ASNs on the path."""
        return frozenset(self.asns)

    # -- hygiene ----------------------------------------------------------

    def collapse_prepending(self) -> "ASPath":
        """Merge runs of adjacent duplicate ASNs (BGP path prepending)."""
        asns = self.asns
        previous = None
        for asn in asns:
            if asn == previous:
                break
            previous = asn
        else:  # no adjacent duplicates: already collapsed
            return self
        collapsed: list[int] = []
        for asn in asns:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return ASPath.trusted(tuple(collapsed))

    def has_loop(self) -> bool:
        """Whether any ASN repeats non-adjacently (e.g. ``A C A``).

        Adjacent duplicates are prepending, not loops; collapse first,
        then look for any remaining repetition.
        """
        collapsed = self.collapse_prepending().asns
        return len(set(collapsed)) != len(collapsed)

    def without(self, asns: Iterable[int]) -> "ASPath":
        """Drop the given ASNs (e.g. IXP route servers) from the path.

        Raises :class:`ASPathError` if the result would be empty.
        """
        drop = set(asns)
        kept = tuple(asn for asn in self.asns if asn not in drop)
        if not kept:
            raise ASPathError(f"removing {sorted(drop)} empties path {self}")
        return ASPath.trusted(kept)

    def prepended(self, asn: int, times: int = 1) -> "ASPath":
        """Return the path with ``asn`` prepended (VP side) ``times`` times."""
        if times < 1:
            raise ASPathError(f"invalid prepend count: {times}")
        return ASPath((asn,) * times + self.asns)

    # -- protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self.asns

    def __getitem__(self, index: int) -> int:
        return self.asns[index]

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self.asns)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"
