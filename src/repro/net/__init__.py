"""Network primitives: ASNs, prefixes, radix tries, blocks, AS paths.

This subpackage is the foundation layer of the reproduction. It contains
no paper-specific logic; everything here is a general-purpose building
block (CIDR arithmetic, most-specific matching, AS-path hygiene) used by
the BGP simulator, the geolocation pipeline, and the ranking metrics.
"""

from repro.net.asn import (
    AS_TRANS,
    ASNRegistry,
    PRIVATE_ASN_RANGES,
    RESERVED_ASNS,
    is_documentation_asn,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
)
from repro.net.aspath import ASPath, ASPathError
from repro.net.blocks import Block, covered_by_more_specifics, split_into_blocks
from repro.net.prefix import Prefix, PrefixError, format_address, parse_address
from repro.net.prefixset import PrefixSet
from repro.net.prefixtrie import PrefixTrie

__all__ = [
    "AS_TRANS",
    "ASNRegistry",
    "ASPath",
    "ASPathError",
    "Block",
    "PRIVATE_ASN_RANGES",
    "Prefix",
    "PrefixError",
    "PrefixSet",
    "PrefixTrie",
    "RESERVED_ASNS",
    "covered_by_more_specifics",
    "format_address",
    "is_documentation_asn",
    "is_private_asn",
    "is_public_asn",
    "is_reserved_asn",
    "parse_address",
    "split_into_blocks",
]
