"""IP prefixes as immutable value objects.

A :class:`Prefix` is a CIDR block in either address family, stored as a
``(version, network_int, length)`` triple. All arithmetic (containment,
splitting, supernets, address counting) is integer arithmetic on the
network value, which keeps the hot paths used by the radix trie and the
geolocation block splitter fast and allocation-free.

The paper's pipeline handles hundreds of millions of announcements keyed
by prefix; our simulator handles millions, so prefixes are hashable and
interned-friendly (two equal prefixes always compare and hash equal).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


class PrefixError(ValueError):
    """Raised for malformed prefix or address literals and invalid ops."""


_V4_BITS = 32
_V6_BITS = 128
_V4_MAX = (1 << _V4_BITS) - 1
_V6_MAX = (1 << _V6_BITS) - 1


def _bits(version: int) -> int:
    if version == 4:
        return _V4_BITS
    if version == 6:
        return _V6_BITS
    raise PrefixError(f"unsupported IP version: {version!r}")


def parse_address(text: str) -> tuple[int, int]:
    """Parse a textual IP address into ``(version, integer_value)``.

    Supports dotted-quad IPv4 and RFC 4291 IPv6 (including ``::``
    compression and embedded IPv4 tails).
    """
    if not isinstance(text, str) or not text:
        raise PrefixError(f"not an address: {text!r}")
    if ":" in text:
        return 6, _parse_v6(text)
    return 4, _parse_v4(text)


def _parse_v4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0") or len(part) > 3:
            raise PrefixError(f"invalid IPv4 octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _parse_v6(text: str) -> int:
    if text.count("::") > 1:
        raise PrefixError(f"multiple '::' in IPv6 address: {text!r}")
    head, sep, tail = text.partition("::")
    head_groups = head.split(":") if head else []
    tail_groups = tail.split(":") if tail else []
    if not sep and len(head_groups) != 8:
        raise PrefixError(f"invalid IPv6 address: {text!r}")

    def expand(groups: list[str]) -> list[int]:
        out: list[int] = []
        for group in groups:
            if "." in group:
                if group is not groups[-1]:
                    raise PrefixError(f"embedded IPv4 not at tail: {text!r}")
                v4 = _parse_v4(group)
                out.append(v4 >> 16)
                out.append(v4 & 0xFFFF)
                continue
            if not group or len(group) > 4:
                raise PrefixError(f"invalid IPv6 group in {text!r}")
            try:
                out.append(int(group, 16))
            except ValueError as exc:
                raise PrefixError(f"invalid IPv6 group in {text!r}") from exc
        return out

    head_vals = expand(head_groups)
    tail_vals = expand(tail_groups)
    if sep:
        missing = 8 - len(head_vals) - len(tail_vals)
        if missing < 1:
            raise PrefixError(f"'::' expands to nothing in {text!r}")
        groups16 = head_vals + [0] * missing + tail_vals
    else:
        groups16 = head_vals
    if len(groups16) != 8:
        raise PrefixError(f"invalid IPv6 address: {text!r}")
    value = 0
    for group in groups16:
        value = (value << 16) | group
    return value


def format_address(version: int, value: int) -> str:
    """Render an integer address back to canonical text."""
    bits = _bits(version)
    if not 0 <= value <= (1 << bits) - 1:
        raise PrefixError(f"address value out of range for v{version}: {value}")
    if version == 4:
        return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -1, -16)]
    # Longest run of zero groups gets '::' compression, per RFC 5952.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len :])
    return f"{head}::{tail}"


@dataclass(frozen=True, slots=True, order=False)
class Prefix:
    """A CIDR block: ``version`` (4 or 6), network ``value``, and ``length``.

    Instances are canonical: host bits below ``length`` must be zero
    (``Prefix.parse`` raises otherwise; ``Prefix.from_host`` masks).
    """

    version: int
    value: int
    length: int

    def __post_init__(self) -> None:
        bits = _bits(self.version)
        if not 0 <= self.length <= bits:
            raise PrefixError(f"invalid prefix length /{self.length} for v{self.version}")
        if not 0 <= self.value <= (1 << bits) - 1:
            raise PrefixError(f"prefix value out of range: {self.value}")
        if self.value & self.hostmask():
            raise PrefixError(
                f"host bits set in {format_address(self.version, self.value)}/{self.length}"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or IPv6 equivalent) strictly."""
        if not isinstance(text, str) or "/" not in text:
            raise PrefixError(f"not a prefix literal: {text!r}")
        addr_text, _, len_text = text.rpartition("/")
        if not len_text.isdigit():
            raise PrefixError(f"invalid prefix length in {text!r}")
        version, value = parse_address(addr_text)
        return cls(version, value, int(len_text))

    @classmethod
    def from_host(cls, text: str, length: int) -> "Prefix":
        """Build a prefix from any in-block address, masking host bits."""
        version, value = parse_address(text)
        bits = _bits(version)
        if not 0 <= length <= bits:
            raise PrefixError(f"invalid prefix length /{length} for v{version}")
        mask = ((1 << length) - 1) << (bits - length) if length else 0
        return cls(version, value & mask, length)

    @classmethod
    def v4(cls, text: str) -> "Prefix":
        """Shorthand strict IPv4 parse with a family check."""
        prefix = cls.parse(text)
        if prefix.version != 4:
            raise PrefixError(f"expected IPv4 prefix, got {text!r}")
        return prefix

    # -- arithmetic ------------------------------------------------------

    def bits(self) -> int:
        """Address-family width in bits (32 or 128)."""
        return _bits(self.version)

    def hostmask(self) -> int:
        """Integer mask of the host bits."""
        return (1 << (self.bits() - self.length)) - 1

    def netmask(self) -> int:
        """Integer mask of the network bits."""
        return ((1 << self.bits()) - 1) ^ self.hostmask()

    def num_addresses(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (self.bits() - self.length)

    def first_address(self) -> int:
        """Lowest address in the block, as an integer."""
        return self.value

    def last_address(self) -> int:
        """Highest address in the block, as an integer."""
        return self.value | self.hostmask()

    def contains_address(self, version: int, value: int) -> bool:
        """Whether the integer address falls inside this prefix."""
        if version != self.version:
            return False
        return self.value <= value <= self.last_address()

    def contains(self, other: "Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        if other.version != self.version or other.length < self.length:
            return False
        return (other.value & self.netmask()) == self.value

    def overlaps(self, other: "Prefix") -> bool:
        """Whether the two blocks share any address."""
        return self.contains(other) or other.contains(self)

    def split(self) -> tuple["Prefix", "Prefix"]:
        """The two halves one bit more specific than this prefix."""
        if self.length >= self.bits():
            raise PrefixError(f"cannot split a host prefix {self}")
        child_len = self.length + 1
        half = 1 << (self.bits() - child_len)
        return (
            Prefix(self.version, self.value, child_len),
            Prefix(self.version, self.value | half, child_len),
        )

    def subnets(self, new_length: int) -> list["Prefix"]:
        """All subnets of this prefix at ``new_length``."""
        if new_length < self.length or new_length > self.bits():
            raise PrefixError(f"cannot subnet /{self.length} into /{new_length}")
        step = 1 << (self.bits() - new_length)
        count = 1 << (new_length - self.length)
        return [
            Prefix(self.version, self.value + index * step, new_length)
            for index in range(count)
        ]

    def supernet(self, new_length: int | None = None) -> "Prefix":
        """The covering prefix at ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self.length - 1
        if new_length < 0 or new_length > self.length:
            raise PrefixError(f"cannot supernet /{self.length} to /{new_length}")
        mask = ((1 << new_length) - 1) << (self.bits() - new_length) if new_length else 0
        return Prefix(self.version, self.value & mask, new_length)

    def bit_at(self, depth: int) -> int:
        """The address bit at ``depth`` (0 = most significant)."""
        if not 0 <= depth < self.bits():
            raise PrefixError(f"bit depth {depth} out of range")
        return (self.value >> (self.bits() - 1 - depth)) & 1

    def addresses(self) -> range:
        """Iterate the integer addresses of the block (careful with size)."""
        return range(self.first_address(), self.last_address() + 1)

    # -- ordering & rendering ---------------------------------------------

    def sort_key(self) -> tuple[int, int, int]:
        """Stable total order: family, then network value, then length."""
        return (self.version, self.value, self.length)

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return f"{format_address(self.version, self.value)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


@lru_cache(maxsize=65536)
def cached_prefix(text: str) -> Prefix:
    """Parse-with-memoisation for hot loops over repeated literals."""
    return Prefix.parse(text)
