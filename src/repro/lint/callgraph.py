"""Whole-program symbol table, conservative call graph, reachability.

The per-file rules (R001–R008) see one module at a time, which is
exactly the blind spot the parallel/caching work opened up: the
fork-inherited broadcast registry lives in :mod:`repro.perf.pool`, the
worker chunk functions in :mod:`repro.perf.parallel`, and the code they
ultimately execute anywhere in ``repro.*``. The whole-program tier
(rules R009–R012 in :mod:`repro.lint.wprules`) asks questions no single
AST can answer — *can this function execute inside a worker process?*,
*can this metric compute callable reach an RNG?* — so it needs a
program-wide view:

* a **symbol table** over every module handed to :class:`Program` —
  functions, methods (with their classes and bases), module-level
  names, and import aliases;
* a **conservative call graph**: one node per function/method, edges
  resolved syntactically. Direct calls, from-imports, module-alias
  attributes, ``self.method()`` through the class and its bases, and
  locally-instantiated / parameter-annotated receivers resolve to a
  single callee; anything else falls back to a *dynamic* edge to every
  known function sharing the terminal name (over-approximation never
  loses a real edge, it only adds candidates);
* **reachability** queries with parent tracking, so a finding can name
  the call chain that makes it a hazard.

Everything is deterministic: modules are processed in sorted module-
name order regardless of input order, per-function edges follow AST
order, and BFS expands a sorted frontier — so reachability answers (and
therefore findings) are byte-identical across file orderings.

Resolution is heuristic by design, like the per-file checkers: no type
inference, no evaluation. The escape hatches (``# repro: noqa`` and the
baseline) absorb residual false positives.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.lint.visitors import (
    _MUTATING_METHODS,
    UnseededRngChecker,
    WallClockChecker,
    FileContext,
    root_name,
)


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module participating in the program."""

    module: str
    path: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass(slots=True)
class FunctionInfo:
    """One function or method in the symbol table."""

    qname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: qname of the enclosing function for nested defs (closures)
    parent: str | None = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None


@dataclass(slots=True)
class ClassInfo:
    """One class: its methods and (syntactic) base-class names."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    #: base-class identifiers as written (terminal names)
    bases: tuple[str, ...]
    #: method name -> function qname
    methods: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class CallEdge:
    """One resolved call: caller → callee, with how it was resolved."""

    callee: str
    #: ``direct`` (name/import/self/typed receiver), ``dynamic``
    #: (unknown receiver, matched by terminal name), or ``decorator``
    kind: str
    lineno: int


@dataclass(frozen=True, slots=True)
class Hazard:
    """One per-function fact a whole-program rule cares about."""

    kind: str  # ``module-write`` / ``rng`` / ``clock`` / ``param-mutation``
    lineno: int
    col: int
    detail: str


@dataclass(slots=True)
class FunctionFacts:
    """Everything extracted from one function body in a single pass."""

    #: writes to module-level state: (hazard, written name, verb)
    module_writes: list[tuple[Hazard, str, str]] = field(default_factory=list)
    rng: list[Hazard] = field(default_factory=list)
    clocks: list[Hazard] = field(default_factory=list)
    param_mutations: list[Hazard] = field(default_factory=list)
    #: terminal names of callables this function calls (for cheap
    #: "does it ever call X" checks without graph traversal)
    called_names: frozenset[str] = frozenset()


def body_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Every node in a function body, excluding nested def/class
    subtrees (those are separate symbol-table entries)."""
    stack: list[ast.AST] = []
    for stmt in func.body:
        stack.append(stmt)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # still visit decorators/defaults — they run in this scope
            for deco in getattr(node, "decorator_list", []):
                stack.append(deco)
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _annotation_idents(node: ast.AST | None) -> set[str]:
    """Every identifier in an annotation, re-parsing string fragments."""
    names: set[str] = set()
    if node is None:
        return names
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Constant) and isinstance(current.value, str):
            try:
                stack.append(ast.parse(current.value, mode="eval").body)
            except SyntaxError:
                pass
            continue
        for child in ast.walk(current):
            if isinstance(child, ast.Name):
                names.add(child.id)
            elif isinstance(child, ast.Attribute):
                names.add(child.attr)
            elif isinstance(child, ast.Constant) and isinstance(
                child.value, str
            ) and child is not current:
                stack.append(child)
    return names


class Program:
    """The whole-program view: symbol table + call graph + facts.

    Construction walks every module once; call edges and per-function
    facts are derived lazily and memoised, so a lint run only pays for
    the functions its active rules actually reach.
    """

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        #: module name -> info, in sorted module order (determinism
        #: across input file orderings)
        self.modules: dict[str, ModuleInfo] = {
            info.module: info
            for info in sorted(modules, key=lambda m: m.module)
        }
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module -> names assigned at module level
        self.module_globals: dict[str, frozenset[str]] = {}
        #: module -> (alias -> module), (alias -> (module, original))
        self.imports: dict[
            str, tuple[dict[str, str], dict[str, tuple[str, str]]]
        ] = {}
        #: module -> name -> value expr of a module-level assignment
        #: (type aliases like ``PropagatePayload = tuple[...]``)
        self.module_assigns: dict[str, dict[str, ast.expr]] = {}
        #: terminal name -> sorted qnames (the dynamic-dispatch fallback)
        self.by_name: dict[str, tuple[str, ...]] = {}
        self._edges: dict[str, tuple[CallEdge, ...]] = {}
        self._facts: dict[str, FunctionFacts] = {}
        for info in self.modules.values():
            self._index_module(info)
        names: dict[str, list[str]] = {}
        for qname, fn in self.functions.items():
            names.setdefault(fn.name, []).append(qname)
        self.by_name = {
            name: tuple(sorted(qnames)) for name, qnames in names.items()
        }

    # -- symbol table ---------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        module = info.module
        globals_: set[str] = set()
        module_aliases: dict[str, str] = {}
        from_aliases: dict[str, tuple[str, str]] = {}
        assigns: dict[str, ast.expr] = {}
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    from_aliases[alias.asname or alias.name] = (
                        stmt.module, alias.name,
                    )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        globals_.add(target.id)
                        assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                globals_.add(stmt.target.id)
                if stmt.value is not None:
                    assigns[stmt.target.id] = stmt.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                globals_.add(stmt.name)
                self._index_function(info, stmt, cls=None, parent=None)
            elif isinstance(stmt, ast.ClassDef):
                globals_.add(stmt.name)
                self._index_class(info, stmt)
        self.module_globals[module] = frozenset(globals_)
        self.imports[module] = (module_aliases, from_aliases)
        self.module_assigns[module] = assigns

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{info.module}.{node.name}"
        bases = tuple(
            name for name in (
                base.id if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute) else None
                for base in node.bases
            ) if name is not None
        )
        cls = ClassInfo(
            qname=qname, module=info.module, name=node.name,
            node=node, bases=bases,
        )
        self.classes[qname] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(info, stmt, cls=node.name, parent=None)
                cls.methods[stmt.name] = fn.qname

    def _index_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
        parent: str | None,
    ) -> FunctionInfo:
        if parent is not None:
            qname = f"{parent}.<locals>.{node.name}"
        elif cls is not None:
            qname = f"{info.module}.{cls}.{node.name}"
        else:
            qname = f"{info.module}.{node.name}"
        fn = FunctionInfo(
            qname=qname, module=info.module, name=node.name,
            cls=cls, node=node, parent=parent,
        )
        self.functions[qname] = fn
        # nested defs are their own nodes (closures R010 cares about)
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_q = f"{qname}.<locals>.{stmt.name}"
                if nested_q not in self.functions:
                    self.functions[nested_q] = FunctionInfo(
                        qname=nested_q, module=info.module, name=stmt.name,
                        cls=None, node=stmt, parent=qname,
                    )
        return fn

    # -- name resolution ------------------------------------------------------

    def resolve_name(
        self,
        module: str,
        name: str,
        extra_from: dict[str, tuple[str, str]] | None = None,
    ) -> str | None:
        """A bare name in ``module`` → the function/class qname it
        denotes, through module-level defs and from-imports.

        ``extra_from`` supplies function-local from-imports — the
        worker chunk functions import ``broadcast_get`` lazily inside
        their bodies, and those edges matter most of all.
        """
        candidate = f"{module}.{name}"
        if candidate in self.functions or candidate in self.classes:
            return candidate
        _, from_aliases = self.imports.get(module, ({}, {}))
        origin = from_aliases.get(name)
        if origin is None and extra_from is not None:
            origin = extra_from.get(name)
        if origin is not None:
            return f"{origin[0]}.{origin[1]}"  # may be external; qualified
        return None

    def resolve_method(self, class_qname: str, method: str) -> str | None:
        """``method`` looked up on a class and (recursively) its bases."""
        seen: set[str] = set()
        stack = [class_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                resolved = self.resolve_name(cls.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def expand_annotation(self, module: str, node: ast.AST | None) -> set[str]:
        """Identifiers in an annotation, with module-level type aliases
        expanded one level (``payload: Payload`` where ``Payload =
        tuple["View", ...]`` surfaces ``View``)."""
        idents = _annotation_idents(node)
        assigns = self.module_assigns.get(module, {})
        for name in tuple(idents):
            alias_value = assigns.get(name)
            if alias_value is not None:
                idents |= _annotation_idents(alias_value)
        return idents

    # -- call edges -----------------------------------------------------------

    def edges_of(self, qname: str) -> tuple[CallEdge, ...]:
        """The (memoised) outgoing call edges of one function."""
        cached = self._edges.get(qname)
        if cached is not None:
            return cached
        fn = self.functions.get(qname)
        edges: list[CallEdge] = []
        if fn is not None:
            local_mod, local_from = self._function_imports(fn)
            receiver_types = self._receiver_types(fn, local_from)
            for node in body_nodes(fn.node):
                if isinstance(node, ast.Call):
                    edges.extend(self._resolve_call(
                        fn, node, receiver_types, local_mod, local_from,
                    ))
            for deco in fn.node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                resolved = self._resolve_callable_expr(fn, target, local_from)
                if resolved is not None and resolved in self.functions:
                    edges.append(
                        CallEdge(resolved, "decorator", fn.node.lineno)
                    )
        result = tuple(edges)
        self._edges[qname] = result
        return result

    def _function_imports(
        self, fn: FunctionInfo
    ) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
        """Function-local import aliases (lazy worker-side imports)."""
        local_mod: dict[str, str] = {}
        local_from: dict[str, tuple[str, str]] = {}
        for node in body_nodes(fn.node):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local_mod[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local_from[alias.asname or alias.name] = (
                        node.module, alias.name,
                    )
        return local_mod, local_from

    def _receiver_types(
        self,
        fn: FunctionInfo,
        local_from: dict[str, tuple[str, str]] | None = None,
    ) -> dict[str, str]:
        """Local name → class qname, from parameter annotations and
        single-class local instantiations (``slicer = ViewSlicer(v)``)."""
        types: dict[str, str] = {}
        args = fn.node.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ):
            for ident in _annotation_idents(arg.annotation):
                resolved = self.resolve_name(fn.module, ident, local_from)
                if resolved is not None and resolved in self.classes:
                    types[arg.arg] = resolved
                    break
        for node in body_nodes(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = node.value.func
                if isinstance(callee, ast.Name):
                    resolved = self.resolve_name(
                        fn.module, callee.id, local_from
                    )
                    if resolved is not None and resolved in self.classes:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                types[target.id] = resolved
        return types

    def _resolve_callable_expr(
        self,
        fn: FunctionInfo,
        expr: ast.AST,
        local_from: dict[str, tuple[str, str]] | None = None,
    ) -> str | None:
        """A callee expression → qname, for Name/module-alias shapes."""
        if isinstance(expr, ast.Name):
            return self.resolve_name(fn.module, expr.id, local_from)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            module_aliases, _ = self.imports.get(fn.module, ({}, {}))
            target_module = module_aliases.get(expr.value.id)
            if target_module is not None:
                return f"{target_module}.{expr.attr}"
        return None

    def _resolve_call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        receiver_types: dict[str, str],
        local_mod: dict[str, str] | None = None,
        local_from: dict[str, tuple[str, str]] | None = None,
    ) -> list[CallEdge]:
        func = node.func
        lineno = getattr(node, "lineno", fn.node.lineno)
        # bare name: local def, from-import, or class instantiation
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(fn.module, func.id, local_from)
            if resolved is None:
                return []
            if resolved in self.classes:
                init = self.resolve_method(resolved, "__init__")
                return [CallEdge(init, "direct", lineno)] if init else []
            if resolved in self.functions:
                return [CallEdge(resolved, "direct", lineno)]
            return []
        if not isinstance(func, ast.Attribute):
            return []
        owner = func.value
        # module alias: ``pool.broadcast_get(...)`` via ``import m``
        if isinstance(owner, ast.Name):
            module_aliases, _ = self.imports.get(fn.module, ({}, {}))
            target_module = module_aliases.get(owner.id)
            if target_module is None and local_mod is not None:
                target_module = local_mod.get(owner.id)
            if target_module is not None:
                candidate = f"{target_module}.{func.attr}"
                if candidate in self.functions:
                    return [CallEdge(candidate, "direct", lineno)]
                if candidate in self.classes:
                    init = self.resolve_method(candidate, "__init__")
                    return [CallEdge(init, "direct", lineno)] if init else []
                return []
            # ``self.method()`` through the class and its bases
            if owner.id == "self" and fn.cls is not None:
                resolved = self.resolve_method(
                    f"{fn.module}.{fn.cls}", func.attr
                )
                if resolved is not None:
                    return [CallEdge(resolved, "direct", lineno)]
                return self._dynamic_edges(func.attr, lineno)
            # typed receiver (annotated parameter / local instantiation)
            cls_qname = receiver_types.get(owner.id)
            if cls_qname is not None:
                resolved = self.resolve_method(cls_qname, func.attr)
                if resolved is not None:
                    return [CallEdge(resolved, "direct", lineno)]
                return self._dynamic_edges(func.attr, lineno)
        # unknown receiver: conservative dynamic-dispatch fallback
        return self._dynamic_edges(func.attr, lineno)

    def _dynamic_edges(self, name: str, lineno: int) -> list[CallEdge]:
        return [
            CallEdge(qname, "dynamic", lineno)
            for qname in self.by_name.get(name, ())
        ]

    # -- reachability ---------------------------------------------------------

    def reachable(
        self,
        entries: Iterable[str],
        include_dynamic: bool = True,
    ) -> dict[str, str | None]:
        """Every function reachable from ``entries``, as a
        ``{qname: parent qname}`` map (entries map to ``None``).

        BFS over sorted entries with per-function AST-ordered edges:
        the parent map — and therefore any chain built from it — is
        deterministic for a given program, regardless of the order the
        program's files were supplied in.
        """
        parents: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for entry in sorted(set(entries)):
            if entry in self.functions and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for edge in self.edges_of(current):
                if not include_dynamic and edge.kind == "dynamic":
                    continue
                if edge.callee in parents or edge.callee not in self.functions:
                    continue
                parents[edge.callee] = current
                queue.append(edge.callee)
        return parents

    @staticmethod
    def chain(parents: dict[str, str | None], target: str) -> list[str]:
        """The entry → … → target call chain from a reachability map."""
        chain: list[str] = []
        cursor: str | None = target
        while cursor is not None:
            chain.append(cursor)
            cursor = parents.get(cursor)
        chain.reverse()
        return chain

    def reaches(
        self,
        entries: Iterable[str],
        predicate: Callable[[FunctionInfo], bool],
        include_dynamic: bool = True,
    ) -> bool:
        """Whether any function satisfying ``predicate`` is reachable."""
        parents = self.reachable(entries, include_dynamic)
        return any(
            predicate(self.functions[qname]) for qname in parents
        )

    # -- per-function facts ---------------------------------------------------

    def facts(self, qname: str) -> FunctionFacts:
        """The (memoised) hazard facts for one function."""
        cached = self._facts.get(qname)
        if cached is not None:
            return cached
        fn = self.functions.get(qname)
        facts = FunctionFacts()
        if fn is not None:
            self._extract_facts(fn, facts)
        self._facts[qname] = facts
        return facts

    def _extract_facts(self, fn: FunctionInfo, facts: FunctionFacts) -> None:
        info = self.modules[fn.module]
        globals_ = self.module_globals.get(fn.module, frozenset())
        declared_global: set[str] = set()
        params = {
            arg.arg
            for arg in (
                *fn.node.args.posonlyargs, *fn.node.args.args,
                *fn.node.args.kwonlyargs,
            )
        } - {"self", "cls"}
        called: set[str] = set()

        def local_source(lineno: int) -> str:
            return info.source_line(lineno).strip()

        def hazard(node: ast.AST, kind: str, detail: str) -> Hazard:
            return Hazard(
                kind=kind,
                lineno=getattr(node, "lineno", fn.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                detail=detail,
            )

        for node in body_nodes(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def record_write(node: ast.AST, target: ast.AST, verb: str) -> None:
            if isinstance(target, ast.Name):
                if target.id in declared_global and target.id in globals_:
                    facts.module_writes.append((
                        hazard(node, "module-write",
                               f"{verb} module-level {target.id!r}"),
                        target.id, verb,
                    ))
                elif target.id in params:
                    pass  # rebinding a parameter is a local rebind
                return
            name = root_name(target)
            if name is None:
                return
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if name in globals_ and name not in params and name != "self":
                    facts.module_writes.append((
                        hazard(node, "module-write",
                               f"{verb} module-level {name!r}"),
                        name, verb,
                    ))
                elif name in params:
                    facts.param_mutations.append(
                        hazard(node, "param-mutation",
                               f"{verb} parameter {name!r}")
                    )

        for node in body_nodes(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record_write(node, target, "assigns into")
            elif isinstance(node, ast.AugAssign):
                record_write(node, node.target, "assigns into")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    record_write(node, target, "deletes from")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    called.add(func.attr)
                    if func.attr in _MUTATING_METHODS:
                        name = root_name(func.value)
                        if name is not None and name in globals_ and (
                            name not in params
                        ):
                            facts.module_writes.append((
                                hazard(node, "module-write",
                                       f"calls .{func.attr}() on "
                                       f"module-level {name!r}"),
                                name, f"calls .{func.attr}() on",
                            ))
                        elif name is not None and name in params:
                            facts.param_mutations.append(
                                hazard(node, "param-mutation",
                                       f"calls .{func.attr}() on "
                                       f"parameter {name!r}")
                            )
                elif isinstance(func, ast.Name):
                    called.add(func.id)
        facts.called_names = frozenset(called)

        # RNG / clock facts reuse the per-file checkers, pre-seeded with
        # the module's import aliases so a function body resolves the
        # same way it would in a full-module pass.
        ctx = FileContext(path=info.path, module=fn.module, lines=info.lines)
        module_aliases, from_aliases = self.imports.get(fn.module, ({}, {}))
        for checker_cls, sink, kind in (
            (UnseededRngChecker, facts.rng, "rng"),
            (WallClockChecker, facts.clocks, "clock"),
        ):
            checker = checker_cls(ctx)
            checker.module_aliases.update(module_aliases)
            checker.from_aliases.update(from_aliases)
            checker.visit(fn.node)
            for finding in checker.findings:
                sink.append(Hazard(
                    kind=kind, lineno=finding.line, col=finding.col,
                    detail=finding.message,
                ))

    # -- call-site scans ------------------------------------------------------

    def call_sites(
        self, terminal_names: frozenset[str]
    ) -> Iterator[tuple[FunctionInfo, ast.Call, str]]:
        """Every call whose callee's terminal name is in the given set,
        across every function, in deterministic (module, qname) order.
        Yields ``(enclosing function, call node, terminal name)``."""
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            for node in body_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                if name in terminal_names:
                    yield fn, node, name
