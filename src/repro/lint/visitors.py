"""Per-rule AST checkers.

Each rule is an :class:`ast.NodeVisitor` subclass bound to one
:class:`repro.lint.rules.Rule`. Checkers are deliberately heuristic —
they resolve names syntactically, not through type inference — and every
checker documents the shape it recognises. The escape hatches
(``# repro: noqa[...]`` and the baseline) absorb the residual false
positives; the fixture corpus under ``tests/lint/fixtures/`` pins down
exactly what fires and what stays quiet.

Checkers receive a :class:`FileContext` (path, dotted module name,
source lines) so module-scoped rules (R002 exempts ``repro.obs``, R007
applies only inside ``repro.perf``) can tell where they are.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.rules import RULES, Finding, Rule


@dataclass(slots=True)
class FileContext:
    """Everything a checker needs to know about the file under lint."""

    path: str
    module: str
    lines: list[str] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col + 1,
            rule_id=rule.id,
            message=message,
            code=self.source_line(line).strip(),
        )


# -- shared syntactic helpers -------------------------------------------------


def call_func_name(node: ast.Call) -> str | None:
    """The terminal identifier of a call's callee (``a.b.c()`` → ``c``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def annotation_names(node: ast.AST | None) -> set[str]:
    """Every bare identifier appearing in an annotation expression
    (handles ``X``, ``X | None``, ``Optional[X]``, ``"X"`` strings)."""
    names: set[str] = set()
    if node is None:
        return names
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # a stringified annotation: re-parse it as an expression
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return names
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


class BaseChecker(ast.NodeVisitor):
    """Common machinery: finding collection and import alias tracking."""

    rule_id = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.rule = RULES[self.rule_id]
        self.findings: list[Finding] = []
        #: alias → imported module (``import numpy as np`` → np: numpy)
        self.module_aliases: dict[str, str] = {}
        #: alias → (module, original name) from ``from m import n as a``
        self.from_aliases: dict[str, tuple[str, str]] = {}

    @classmethod
    def applies_to(cls, module: str) -> bool:
        """Whether the rule runs at all for the given dotted module."""
        return True

    def run(self, tree: ast.AST) -> list[Finding]:
        self.visit(tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(self.rule, node, message))

    # -- import bookkeeping (shared by every checker) ------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_aliases[alias.asname or alias.name] = (
                    node.module, alias.name,
                )
        self.generic_visit(node)

    def aliases_of_module(self, module: str) -> set[str]:
        return {
            alias for alias, target in self.module_aliases.items()
            if target == module
        }

    def from_import_origin(self, name: str) -> tuple[str, str] | None:
        return self.from_aliases.get(name)


# -- R001: unseeded RNG -------------------------------------------------------

#: stdlib ``random`` module-level functions that consume the global RNG
_GLOBAL_RNG_FNS = frozenset((
    "random", "seed", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "getrandbits", "gauss", "betavariate",
    "expovariate", "triangular", "normalvariate", "lognormvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "randbytes",
))


class UnseededRngChecker(BaseChecker):
    """R001 — every RNG must be constructed from an explicit seed.

    Flags: ``random.Random()`` with no arguments, ``random.<fn>(...)``
    module-level calls (the shared global RNG), ``random.SystemRandom``
    anywhere, and ``numpy.random`` global calls (``np.random.seed`` /
    ``np.random.rand`` / zero-argument ``default_rng()``).
    Quiet on: ``random.Random(seed)``, methods of an ``rng`` instance,
    ``np.random.default_rng(seed)``.
    """

    rule_id = "R001"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self.aliases_of_module("random"):
                self._check_stdlib(node, func.attr)
        if isinstance(func, ast.Attribute):
            self._check_numpy(node, func)
        if isinstance(func, ast.Name):
            origin = self.from_import_origin(func.id)
            if origin == ("random", "Random") and not _has_args(node):
                self.report(
                    node,
                    "Random() constructed without a seed — pass an "
                    "explicit seed so runs are reproducible",
                )
            elif origin is not None and origin[0] == "random" and (
                origin[1] in _GLOBAL_RNG_FNS
            ):
                self.report(
                    node,
                    f"module-level random.{origin[1]}() draws from the "
                    "shared global RNG — use a seeded random.Random "
                    "instance instead",
                )
            elif origin == ("random", "SystemRandom"):
                self.report(
                    node,
                    "SystemRandom is OS-entropy backed and cannot be "
                    "seeded — use random.Random(seed)",
                )
        self.generic_visit(node)

    def _check_stdlib(self, node: ast.Call, attr: str) -> None:
        if attr == "Random" and not _has_args(node):
            self.report(
                node,
                "random.Random() constructed without a seed — pass an "
                "explicit seed so runs are reproducible",
            )
        elif attr == "SystemRandom":
            self.report(
                node,
                "random.SystemRandom is OS-entropy backed and cannot "
                "be seeded — use random.Random(seed)",
            )
        elif attr in _GLOBAL_RNG_FNS:
            self.report(
                node,
                f"module-level random.{attr}() draws from the shared "
                "global RNG — use a seeded random.Random instance",
            )

    def _check_numpy(self, node: ast.Call, func: ast.Attribute) -> None:
        # <np>.random.<fn>(...) where <np> aliases numpy
        value = func.value
        if not (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.aliases_of_module("numpy")
        ):
            return
        if func.attr in ("default_rng", "RandomState", "Generator"):
            if not _has_args(node):
                self.report(
                    node,
                    f"numpy.random.{func.attr}() constructed without a "
                    "seed — pass an explicit seed",
                )
        else:
            self.report(
                node,
                f"numpy.random.{func.attr}() uses numpy's global RNG — "
                "use numpy.random.default_rng(seed)",
            )


def _has_args(node: ast.Call) -> bool:
    return bool(node.args) or bool(node.keywords)


# -- R002: wall-clock reads ---------------------------------------------------

_CLOCK_FNS = frozenset((
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime", "ctime",
))
_DATETIME_CLASS_FNS = frozenset(("now", "utcnow", "today", "fromtimestamp"))


#: Modules allowed to read clocks: the observability layer itself, and
#: the watch benchmark helper (`repro.monitor.bench`), whose whole job
#: is timing watch runs — its readings route into the tracer's
#: registry, and the monitor *engine* stays clock-free (the event
#: stream's byte-identity depends on it, so it is deliberately NOT
#: exempt).
_CLOCK_ALLOWED = ("repro.obs", "repro.monitor.bench")


class WallClockChecker(BaseChecker):
    """R002 — only ``repro.obs`` (and the watch benchmark helper
    ``repro.monitor.bench``) may read clocks.

    Pipeline stages must not branch on, store, or emit wall-clock time:
    metric values are deterministic for a fixed seed, and only span
    timings (owned by the observability layer) carry clock noise.
    Flags ``time.time`` / ``time.perf_counter`` / … and
    ``datetime.now`` / ``date.today`` / … reads elsewhere.
    """

    rule_id = "R002"

    @classmethod
    def applies_to(cls, module: str) -> bool:
        return not any(
            module == allowed or module.startswith(allowed + ".")
            for allowed in _CLOCK_ALLOWED
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id in self.aliases_of_module("time")
                and func.attr in _CLOCK_FNS
            ):
                self.report(
                    node,
                    f"time.{func.attr}() read outside repro.obs — route "
                    "timing through the observability layer (Tracer "
                    "spans)",
                )
            elif func.attr in _DATETIME_CLASS_FNS and self._is_datetime(owner):
                self.report(
                    node,
                    f"datetime {func.attr}() read outside repro.obs — "
                    "wall-clock values make output runs diverge",
                )
        elif isinstance(func, ast.Name):
            origin = self.from_import_origin(func.id)
            if origin is not None and origin[0] == "time" and (
                origin[1] in _CLOCK_FNS
            ):
                self.report(
                    node,
                    f"time.{origin[1]}() read outside repro.obs — route "
                    "timing through the observability layer",
                )
        self.generic_visit(node)

    def _is_datetime(self, owner: ast.AST) -> bool:
        # ``datetime.now()`` via ``from datetime import datetime/date``
        if isinstance(owner, ast.Name):
            origin = self.from_import_origin(owner.id)
            return origin is not None and origin[0] == "datetime" and (
                origin[1] in ("datetime", "date")
            )
        # ``datetime.datetime.now()`` via ``import datetime``
        if isinstance(owner, ast.Attribute) and isinstance(owner.value, ast.Name):
            return (
                owner.value.id in self.aliases_of_module("datetime")
                and owner.attr in ("datetime", "date")
            )
        return False


# -- R003: unordered iteration ------------------------------------------------

#: callables whose result does not depend on argument iteration order
_ORDER_INSENSITIVE = frozenset((
    "sorted", "sum", "min", "max", "len", "any", "all", "set",
    "frozenset", "Counter", "dict",
))
#: set methods that return another set
_SET_PRODUCING_METHODS = frozenset((
    "union", "intersection", "difference", "symmetric_difference", "copy",
))
_SET_ANNOTATIONS = frozenset((
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
))
#: loop-body calls that build ordered output
_ORDERED_BUILDERS = frozenset(("append", "extend", "insert"))


class UnorderedIterationChecker(BaseChecker):
    """R003 — ordered output must not be built from raw set iteration.

    Set iteration order depends on hash values (randomized per process
    for strings), so feeding it into a list, tuple, or yield sequence
    breaks the byte-identical-for-any-``--workers`` guarantee. The
    checker resolves set-typed expressions syntactically per scope —
    set literals/comprehensions, ``set()``/``frozenset()`` calls,
    set-returning methods, names consistently assigned those, and
    parameters annotated ``set[...]``/``frozenset[...]`` — then flags:

    * ``for x in <set>:`` loops whose body appends/extends/inserts or
      yields (ordered accumulation from unordered iteration) — unless
      the accumulated list is normalized afterwards by ``lst.sort()``
      or ``lst = sorted(...)`` in the same scope;
    * returned/yielded list- or generator-comprehensions iterating a
      set, and ``list(<set>)`` / ``tuple(<set>)`` in return position —
      unless wrapped in an order-insensitive consumer (``sorted``,
      ``sum``, ``min``/``max``, ``len``, ``any``/``all``, ``set``, …).

    Dicts *built from sets* are hash-ordered too — insertion order is
    the set's iteration order — so the same hazards apply one hop
    later. Names assigned ``{k: f(k) for k in <set>}``,
    ``dict.fromkeys(<set>)``, or ``dict(genexp-over-<set>)`` are
    tracked as hash-ordered dicts, and iterating them (bare, or via
    ``.keys()`` / ``.values()`` / ``.items()``) into ordered output is
    flagged exactly like raw set iteration.

    Set and dict comprehensions are quiet as *outputs*: their content
    is order-independent (serialization layers sort keys separately).
    """

    rule_id = "R003"

    def visit_Module(self, node: ast.Module) -> None:
        # Resolve imports first so nothing depends on statement order.
        for stmt in node.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self.visit(stmt)
        self._analyze_scope(node.body, params=None)
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._analyze_scope(child.body, params=child.args)

    # -- set-typed name resolution -------------------------------------------

    def _scope_set_names(
        self, body: list[ast.stmt], params: ast.arguments | None
    ) -> set[str]:
        """Names that are set-typed for the whole scope: annotated set
        parameters, plus names only ever assigned set expressions."""
        set_votes: set[str] = set()
        poisoned: set[str] = set()
        if params is not None:
            for arg in _all_args(params):
                if annotation_names(arg.annotation) & _SET_ANNOTATIONS:
                    set_votes.add(arg.arg)
        assigns: list[tuple[str, ast.expr]] = []
        for stmt in _walk_scope(body):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((target.id, stmt.value))
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if annotation_names(stmt.annotation) & _SET_ANNOTATIONS:
                    set_votes.add(stmt.target.id)
                elif stmt.value is not None:
                    assigns.append((stmt.target.id, stmt.value))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                # loop targets rebind names arbitrarily: never set-typed
                for target_node in ast.walk(stmt.target):
                    if isinstance(target_node, ast.Name):
                        poisoned.add(target_node.id)
        # two passes so ``a = set(...); b = a`` resolves
        for _ in range(2):
            for name, value in assigns:
                if self._is_set_expr(value, set_votes):
                    set_votes.add(name)
                else:
                    poisoned.add(name)
        return set_votes - poisoned

    def _is_set_expr(self, node: ast.expr, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
                and self._is_set_expr(func.value, set_names)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    # -- hash-ordered dicts (dicts whose insertion order came from a set) ----

    def _scope_hash_dict_names(
        self, body: list[ast.stmt], set_names: set[str]
    ) -> set[str]:
        """Names only ever assigned dicts built from set iteration —
        their insertion order IS the set's hash order."""
        votes: set[str] = set()
        poisoned: set[str] = set()
        for stmt in _walk_scope(body):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if self._is_hash_dict_expr(stmt.value, set_names):
                            votes.add(target.id)
                        else:
                            poisoned.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ) and stmt.value is not None:
                if self._is_hash_dict_expr(stmt.value, set_names):
                    votes.add(stmt.target.id)
                else:
                    poisoned.add(stmt.target.id)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for target_node in ast.walk(stmt.target):
                    if isinstance(target_node, ast.Name):
                        poisoned.add(target_node.id)
        return votes - poisoned

    def _is_hash_dict_expr(
        self, node: ast.expr, set_names: set[str]
    ) -> bool:
        if isinstance(node, ast.DictComp):
            return any(
                self._is_set_expr(gen.iter, set_names)
                for gen in node.generators
            )
        if isinstance(node, ast.Call):
            func = node.func
            # dict.fromkeys(<set>)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "fromkeys"
                and isinstance(func.value, ast.Name)
                and func.value.id == "dict"
                and node.args
            ):
                return self._is_set_expr(node.args[0], set_names)
            # dict(<comprehension over a set>)
            if (
                isinstance(func, ast.Name)
                and func.id == "dict"
                and node.args
                and isinstance(
                    node.args[0], (ast.GeneratorExp, ast.ListComp)
                )
            ):
                return any(
                    self._is_set_expr(gen.iter, set_names)
                    for gen in node.args[0].generators
                )
        return False

    def _is_hash_dict_view(
        self, node: ast.expr, dict_names: set[str]
    ) -> bool:
        """Iteration over a hash-ordered dict: the bare name, or a
        ``.keys()`` / ``.values()`` / ``.items()`` view of it."""
        if isinstance(node, ast.Name):
            return node.id in dict_names
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")
            and isinstance(node.func.value, ast.Name)
        ):
            return node.func.value.id in dict_names
        return False

    def _is_unordered_iter(
        self, node: ast.expr, set_names: set[str], dict_names: set[str]
    ) -> bool:
        return self._is_set_expr(node, set_names) or self._is_hash_dict_view(
            node, dict_names
        )

    # -- hazard detection -----------------------------------------------------

    def _analyze_scope(
        self, body: list[ast.stmt], params: ast.arguments | None
    ) -> None:
        set_names = self._scope_set_names(body, params)
        dict_names = self._scope_hash_dict_names(body, set_names)
        sorted_names = self._normalized_names(body)
        for stmt in _walk_scope(body):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_for(stmt, set_names, dict_names, sorted_names)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._check_ordered_expr(
                    stmt.value, set_names, dict_names, safe=False
                )
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)
            ):
                value = stmt.value.value
                if value is not None:
                    self._check_ordered_expr(
                        value, set_names, dict_names, safe=False
                    )

    def _check_for(
        self,
        stmt: ast.For | ast.AsyncFor,
        set_names: set[str],
        dict_names: set[str],
        sorted_names: set[str],
    ) -> None:
        if not self._is_unordered_iter(stmt.iter, set_names, dict_names):
            return
        for child in ast.walk(stmt):
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                self._report_iter(stmt.iter, "yields", dict_names)
                return
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _ORDERED_BUILDERS
            ):
                target = root_name(child.func.value)
                if target is not None and target in sorted_names:
                    continue  # accumulated order is normalized afterwards
                self._report_iter(
                    stmt.iter, f"{child.func.attr}s to a list", dict_names
                )
                return

    def _normalized_names(self, body: list[ast.stmt]) -> set[str]:
        """Names whose accumulated order the scope normalizes: targets
        of a ``name.sort()`` call or a ``name = sorted(...)`` rebind."""
        names: set[str] = set()
        for stmt in _walk_scope(body):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                func = stmt.value.func
                if isinstance(func, ast.Attribute) and func.attr == "sort":
                    name = root_name(func.value)
                    if name is not None:
                        names.add(name)
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                if call_func_name(stmt.value) == "sorted":
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _check_ordered_expr(
        self,
        node: ast.expr,
        set_names: set[str],
        dict_names: set[str],
        safe: bool,
    ) -> None:
        """Walk a returned/yielded expression; ``safe`` is True once an
        order-insensitive consumer wraps the current subtree."""
        if isinstance(node, ast.Call):
            name = call_func_name(node)
            if self._is_hash_dict_view(node, dict_names):
                return  # d.keys()/.values()/.items() itself; parents decide
            child_safe = safe or name in _ORDER_INSENSITIVE
            if not safe and name in ("list", "tuple"):
                for arg in node.args:
                    if self._is_unordered_iter(arg, set_names, dict_names):
                        self._report_iter(
                            arg, f"is materialized by {name}()", dict_names
                        )
            for arg in node.args:
                self._check_ordered_expr(arg, set_names, dict_names, child_safe)
            for keyword in node.keywords:
                self._check_ordered_expr(
                    keyword.value, set_names, dict_names, child_safe
                )
            return
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if not safe:
                for generator in node.generators:
                    if self._is_unordered_iter(
                        generator.iter, set_names, dict_names
                    ):
                        self._report_iter(
                            generator.iter,
                            "drives a returned comprehension",
                            dict_names,
                        )
            # inner expressions may hold further comprehensions
            self._check_ordered_expr(node.elt, set_names, dict_names, safe)
            return
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            return  # unordered/keyed output: content is order-independent
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._check_ordered_expr(child, set_names, dict_names, safe)

    def _report_iter(
        self, node: ast.expr, verb: str, dict_names: set[str] | None = None
    ) -> None:
        source = "a set"
        fix = "wrap the set in sorted(...)"
        if dict_names and self._is_hash_dict_view(node, dict_names or set()):
            source = "a dict built from a set"
            fix = "sort the keys at build time or wrap in sorted(...)"
        self.report(
            node,
            f"iteration over {source} {verb} — hash order is not "
            f"deterministic; {fix}",
        )


def _walk_scope(body: list[ast.stmt]):
    """Every statement in a scope, recursing into compound statements
    but *not* into nested function/class definitions."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field_value in ast.iter_child_nodes(stmt):
            if isinstance(field_value, ast.stmt):
                stack.append(field_value)
            elif isinstance(field_value, ast.excepthandler):
                stack.extend(field_value.body)
    return


def _all_args(params: ast.arguments) -> list[ast.arg]:
    out = list(params.posonlyargs) + list(params.args) + list(params.kwonlyargs)
    if params.vararg is not None:
        out.append(params.vararg)
    if params.kwarg is not None:
        out.append(params.kwarg)
    return out


# -- R004: float equality on scores ------------------------------------------

_SCORE_NAME_RE = re.compile(
    r"(?:^|_)(?:score|scores|hegemony|heg|ndcg|cti|hhi|weight|weights|"
    r"frac|fraction|ratio|share|shares|mean)(?:_|$)"
)


class FloatEqualityChecker(BaseChecker):
    """R004 — no exact equality on float scores.

    Flags ``==`` / ``!=`` where either operand is a float literal or a
    name/attribute that reads as a score (``score``, ``hegemony``,
    ``ndcg``, ``weight_sum``, ``share``, ``mean`` …). Float scores are
    trimmed-mean sums whose low bits depend on summation order; exact
    comparison belongs only to integer accounting. Comparisons inside
    ``assert`` statements are exempt — the determinism tests *deliber-
    ately* assert byte-identical equality of identically-computed
    values, which is sound.
    """

    rule_id = "R004"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._assert_depth = 0

    def visit_Assert(self, node: ast.Assert) -> None:
        self._assert_depth += 1
        self.generic_visit(node)
        self._assert_depth -= 1

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._assert_depth == 0:
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    left, right = operands[index], operands[index + 1]
                    reason = self._float_like(left) or self._float_like(right)
                    if reason:
                        self.report(
                            node,
                            f"float equality on {reason} — use "
                            "math.isclose(...) or exact-integer "
                            "accounting",
                        )
                        break
        self.generic_visit(node)

    def _float_like(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        identifier: str | None = None
        if isinstance(node, ast.Name):
            identifier = node.id
        elif isinstance(node, ast.Attribute):
            identifier = node.attr
        if identifier is not None and _SCORE_NAME_RE.search(identifier.lower()):
            return f"score-like name {identifier!r}"
        return None


# -- R005: mutable defaults ---------------------------------------------------

_MUTABLE_FACTORIES = frozenset((
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "bytearray", "deque",
))


class MutableDefaultChecker(BaseChecker):
    """R005 — no mutable default arguments.

    A default evaluated once at ``def`` time and mutated per call leaks
    state across pipeline invocations; use ``None`` plus an inner
    default.
    """

    rule_id = "R005"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node.args)
        self.generic_visit(node)

    def _check(self, params: ast.arguments) -> None:
        for default in (*params.defaults, *params.kw_defaults):
            if default is None:
                continue
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ):
                self.report(
                    default,
                    "mutable default argument — use None and create the "
                    "container inside the function",
                )
            elif isinstance(default, ast.Call):
                name = call_func_name(default)
                if name in _MUTABLE_FACTORIES:
                    self.report(
                        default,
                        f"mutable default argument ({name}()) — use None "
                        "and create the container inside the function",
                    )


# -- R006: swallowed exceptions ----------------------------------------------


class SwallowedExceptionChecker(BaseChecker):
    """R006 — no bare/overbroad except that swallows errors.

    A bare ``except:`` is always flagged; ``except Exception`` /
    ``except BaseException`` (alone or in a tuple) is flagged unless the
    handler re-raises. An absorbed error here turns a crash into a
    silently wrong ranking.
    """

    rule_id = "R006"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except swallows every error including "
                "KeyboardInterrupt — catch the specific exception",
            )
        elif self._overbroad(node.type) and not self._reraises(node):
            self.report(
                node,
                "overbroad except without re-raise swallows errors — "
                "catch the specific exception or re-raise",
            )
        self.generic_visit(node)

    @staticmethod
    def _overbroad(node: ast.expr) -> bool:
        names: list[ast.expr] = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        return any(
            isinstance(name, ast.Name)
            and name.id in ("Exception", "BaseException")
            for name in names
        )

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        return any(isinstance(child, ast.Raise) for child in ast.walk(node))


# -- R007: mutation of shared inputs in repro.perf ---------------------------

_PROTECTED_TYPES = frozenset(
    ("View", "PathSet", "Ranking", "PathStore", "MmapPathStore")
)
_MUTATING_METHODS = frozenset((
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "sort", "reverse", "setdefault",
))


class PerfMutationChecker(BaseChecker):
    """R007 — the batch engine must treat its inputs as read-only.

    Inside ``repro.perf`` modules, parameters annotated ``View`` /
    ``PathSet`` / ``Ranking`` / ``PathStore`` (including ``X | None``
    unions) are shared across cached computations: mutating one poisons
    every cache entry built from it (for a ``PathStore``, its flat
    arrays additionally back every consumer of the same record set).
    Flags attribute/subscript assignment, ``del``, and mutating method
    calls rooted at such a parameter. Rebinding the bare parameter name
    is fine (a local rebind, not a mutation).
    """

    rule_id = "R007"

    @classmethod
    def applies_to(cls, module: str) -> bool:
        return module == "repro.perf" or module.startswith("repro.perf.")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        protected = {
            arg.arg
            for arg in _all_args(node.args)
            if annotation_names(arg.annotation) & _PROTECTED_TYPES
        }
        if not protected:
            return
        for child in ast.walk(node):
            self._check_node(child, protected)

    def _check_node(self, node: ast.AST, protected: set[str]) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    name = root_name(target)
                    if name in protected:
                        self._report_mutation(node, name, "assigns into")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    name = root_name(target)
                    if name in protected:
                        self._report_mutation(node, name, "deletes from")
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_METHODS:
                name = root_name(node.func.value)
                if name in protected:
                    self._report_mutation(
                        node, name, f"calls .{node.func.attr}() on"
                    )

    def _report_mutation(self, node: ast.AST, name: str, verb: str) -> None:
        self.report(
            node,
            f"{verb} shared parameter {name!r} — perf-layer inputs are "
            "read-only (mutation poisons cross-metric caches)",
        )


# -- R008: metric naming convention ------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
_INSTRUMENT_FACTORIES = frozenset(("counter", "gauge", "histogram"))


def _registered_metric(name: str) -> bool:
    """Whether ``name`` is in the metric registry (any case).

    Imported lazily so the linter keeps working on trees where
    ``repro.core`` itself fails to import — the rule then degrades to
    checking only the instrument-name convention.
    """
    try:
        from repro.core.registry import maybe_spec
    except Exception:  # repro: noqa[R006] — degrade, don't crash the lint run
        return True
    return maybe_spec(name) is not None


class MetricNameChecker(BaseChecker):
    """R008 — metric names come from the metric registry, instrument
    names follow ``stage.metric_name``.

    Two shapes are checked. Every string literal passed to
    ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` must be
    dotted lowercase with at least two segments (``lint.files``,
    ``sanitize.dropped.loop``). And every string literal passed as the
    first argument of a ``.ranking(...)`` method call must name a
    metric registered in :mod:`repro.core.registry` — so a newly
    registered metric is lint-covered automatically, and a typo'd or
    unregistered name is caught statically. Dynamic names (f-strings,
    variables) are skipped — the registry lookup and the Prometheus
    exporter cover those at runtime. The rule guards the *production*
    namespace: it applies to ``repro.*`` modules only, so unit tests
    may use toy names.
    """

    rule_id = "R008"

    @classmethod
    def applies_to(cls, module: str) -> bool:
        return module == "repro" or module.startswith("repro.")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_FACTORIES
            and node.args
        ):
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if _METRIC_NAME_RE.fullmatch(first.value) is None:
                    self.report(
                        first,
                        f"metric name {first.value!r} violates the "
                        "stage.metric_name convention (dotted lowercase, "
                        "at least two segments)",
                    )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "ranking"
            and node.args
        ):
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if not _registered_metric(first.value):
                    self.report(
                        first,
                        f"metric {first.value!r} is not registered in "
                        "repro.core.registry (register the spec, or fix "
                        "the name)",
                    )
        self.generic_visit(node)


#: every checker, in rule-id order
ALL_CHECKERS: tuple[type[BaseChecker], ...] = (
    UnseededRngChecker,
    WallClockChecker,
    UnorderedIterationChecker,
    FloatEqualityChecker,
    MutableDefaultChecker,
    SwallowedExceptionChecker,
    PerfMutationChecker,
    MetricNameChecker,
)
