"""``python -m repro.lint`` — the same entry point as ``repro-lint``."""

import sys

from repro.lint.cli import main

sys.exit(main())
