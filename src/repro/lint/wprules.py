"""Whole-program rules R009–R012 over the conservative call graph.

Where :mod:`repro.lint.visitors` checks one file at a time, these
checkers receive a :class:`repro.lint.callgraph.Program` — every module
under lint at once — and answer cross-module questions:

* **R009 fork-safety** — no function reachable from a worker-pool chunk
  entry point may write module-level state, except inside the
  sanctioned broadcast registry (:mod:`repro.perf.pool`). A worker's
  module state dies with the worker; under pool respawn it differs per
  replay.
* **R010 broadcast discipline** — worker payloads must carry broadcast
  *tokens*, not the heavy world objects themselves (``ASGraph`` /
  ``PathSet`` / ``View`` / ``PathStore``); and a worker that resolves
  tokens via ``broadcast_get`` must be dispatched by code that actually
  ``broadcast(...)``\\ s something.
* **R011 memo-coherence** — classes annotate their version-memoised
  caches with ``# repro: memo-guard version=<attr> fields=<f1>,<f2>``;
  every method mutating a guarded field must bump the version attr
  (directly or via a same-class method it calls).
* **R012 spec purity** — every callable wired into ``MetricSpec(...,
  compute=...)`` must be transitively free of unseeded RNG, wall-clock
  reads, and parameter mutation, by reachability rather than R001/R002's
  per-module scoping.

Like the per-file tier, resolution is syntactic and conservative
(dynamic-dispatch fallback edges over-approximate), and the same escape
hatches apply: ``# repro: noqa[R0xx]`` on the flagged line, or a
baseline entry with a justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.lint.callgraph import (
    FunctionInfo,
    Hazard,
    Program,
    body_nodes,
)
from repro.lint.rules import RULES, Finding
from repro.lint.visitors import _CLOCK_ALLOWED, _MUTATING_METHODS

#: the only module allowed to hold cross-process module state (the
#: broadcast registry itself: ``_BROADCAST``, ``_token_counter``)
_SANCTIONED_MODULES = ("repro.perf.pool",)

#: world objects that must cross the process boundary via broadcast
_HEAVY_TYPES = frozenset(
    ("ASGraph", "PathSet", "View", "PathStore", "MmapPathStore")
)

#: receiver names that smell like an executor/pool for ``.submit``/``.map``
_POOL_RECEIVER_RE = re.compile(r"(?:^|_)(?:pool|executor|ex)(?:_|$|\d)")

_MEMO_GUARD_RE = re.compile(
    r"#\s*repro:\s*memo-guard\s+"
    r"version=([A-Za-z_]\w*)\s+"
    r"fields=([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)"
)


def _is_sanctioned(module: str) -> bool:
    return any(
        module == allowed or module.startswith(allowed + ".")
        for allowed in _SANCTIONED_MODULES
    )


def _clock_allowed(module: str) -> bool:
    return any(
        module == allowed or module.startswith(allowed + ".")
        for allowed in _CLOCK_ALLOWED
    )


def _short_chain(parents: dict[str, str | None], target: str) -> str:
    """``entry → … → target`` rendered with bare function names."""
    chain = Program.chain(parents, target)
    if len(chain) > 4:
        chain = [chain[0], "…", chain[-2], chain[-1]]
    return " → ".join(part.rsplit(".", 1)[-1] if part != "…" else part
                      for part in chain)


@dataclass(frozen=True, slots=True)
class WorkerDispatch:
    """One place a function is handed to a worker pool."""

    #: qname of the chunk entry function (or None for a lambda)
    entry: str | None
    #: the function containing the dispatch call
    dispatcher: str
    #: the dispatch call node (for locations)
    node: ast.Call
    #: True when the dispatched callable is a lambda / nested def
    closure: bool


def find_worker_dispatches(program: Program) -> list[WorkerDispatch]:
    """Every spot a callable is handed to a pool for worker execution.

    Two shapes, matching the repo's fan-out idiom:

    * ``resilient_map(stage, fn, payloads, workers, ...)`` — ``fn`` is
      the second positional argument;
    * ``<pool-ish>.submit(fn, ...)`` / ``<pool-ish>.map(fn, ...)`` —
      first argument, when the receiver name smells like a pool or
      executor.
    """
    dispatches: list[WorkerDispatch] = []
    for fn, node, name in program.call_sites(
        frozenset(("resilient_map", "submit", "map"))
    ):
        if name == "resilient_map":
            if len(node.args) < 2:
                continue
            target = node.args[1]
        else:
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue  # bare ``map(...)`` builtin, not a pool method
            receiver = func.value
            receiver_name = (
                receiver.id if isinstance(receiver, ast.Name)
                else receiver.attr if isinstance(receiver, ast.Attribute)
                else None
            )
            if receiver_name is None or not _POOL_RECEIVER_RE.search(
                receiver_name.lower()
            ):
                continue
            if not node.args:
                continue
            target = node.args[0]
        if isinstance(target, ast.Lambda):
            dispatches.append(WorkerDispatch(None, fn.qname, node, True))
            continue
        if not isinstance(target, ast.Name):
            continue
        _, local_from = program._function_imports(fn)
        resolved = program.resolve_name(fn.module, target.id, local_from)
        if resolved is None or resolved not in program.functions:
            continue
        closure = program.functions[resolved].is_nested
        dispatches.append(WorkerDispatch(resolved, fn.qname, node, closure))
    return dispatches


class ProgramChecker:
    """Base for whole-program checkers: finding plumbing over a Program."""

    rule_id = ""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.rule = RULES[self.rule_id]
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self.check()
        self.findings.sort(key=Finding.sort_key)
        return self.findings

    def check(self) -> None:
        raise NotImplementedError

    def report(
        self, module: str, lineno: int, col: int, message: str
    ) -> None:
        info = self.program.modules.get(module)
        path = info.path if info is not None else module
        code = info.source_line(lineno).strip() if info is not None else ""
        self.findings.append(Finding(
            path=path, line=lineno, col=col,
            rule_id=self.rule.id, message=message, code=code,
        ))

    def report_hazard(
        self, fn: FunctionInfo, hazard: Hazard, message: str
    ) -> None:
        self.report(fn.module, hazard.lineno, hazard.col, message)


# -- R009: fork-safety --------------------------------------------------------


class ForkSafetyChecker(ProgramChecker):
    """R009 — no module-state writes on any worker-reachable path.

    Entries are the chunk functions handed to ``resilient_map`` /
    ``pool.submit``; the reachable set includes dynamic-dispatch
    fallback edges (over-approximation: a write we cannot rule out is
    a write we flag). The broadcast registry module itself is
    sanctioned — holding cross-process state is its whole job.
    """

    rule_id = "R009"

    def check(self) -> None:
        entries = sorted({
            d.entry for d in find_worker_dispatches(self.program)
            if d.entry is not None
        })
        if not entries:
            return
        parents = self.program.reachable(entries)
        for qname in sorted(parents):
            fn = self.program.functions[qname]
            if _is_sanctioned(fn.module):
                continue
            facts = self.program.facts(qname)
            for hazard, name, verb in facts.module_writes:
                chain = _short_chain(parents, qname)
                self.report_hazard(
                    fn, hazard,
                    f"{verb} module-level {name!r} inside a worker-"
                    f"reachable function ({chain}) — worker module "
                    "state is lost on exit and diverges across pool "
                    "respawns; route shared state through "
                    "pool.broadcast",
                )


# -- R010: broadcast discipline -----------------------------------------------


class BroadcastDisciplineChecker(ProgramChecker):
    """R010 — heavy state crosses the fork boundary as tokens only.

    Three shapes are flagged: a chunk entry whose parameter annotations
    (with module-level payload type aliases expanded) mention a heavy
    world type — that object would be pickled into every chunk; a
    lambda or nested function dispatched to a pool — its closure ships
    (and re-ships) whatever it captured; and a chunk entry that
    resolves broadcast tokens while its dispatcher never calls
    ``broadcast(...)`` — tokens with no producer fail only at worker
    runtime, on every replay.
    """

    rule_id = "R010"

    def check(self) -> None:
        dispatches = find_worker_dispatches(self.program)
        seen_entries: set[str] = set()
        for dispatch in dispatches:
            dispatcher = self.program.functions[dispatch.dispatcher]
            if dispatch.closure:
                label = (
                    "a lambda" if dispatch.entry is None
                    else f"nested function "
                         f"{dispatch.entry.rsplit('.', 1)[-1]!r}"
                )
                self.report(
                    dispatcher.module,
                    dispatch.node.lineno, dispatch.node.col_offset + 1,
                    f"dispatches {label} to a worker pool — its closure "
                    "is pickled into every chunk; use a top-level "
                    "function taking a broadcast token",
                )
                continue
            entry = self.program.functions[dispatch.entry]
            if dispatch.entry not in seen_entries:
                seen_entries.add(dispatch.entry)
                self._check_entry_payload(entry)
            self._check_token_producer(entry, dispatcher, dispatch)

    def _check_entry_payload(self, entry: FunctionInfo) -> None:
        args = entry.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            heavy = self.program.expand_annotation(
                entry.module, arg.annotation
            ) & _HEAVY_TYPES
            if heavy:
                names = ", ".join(sorted(heavy))
                self.report(
                    entry.module, arg.lineno, arg.col_offset + 1,
                    f"worker payload parameter {arg.arg!r} carries "
                    f"{names} — heavy world objects are pickled per "
                    "chunk; broadcast once and pass the token",
                )

    def _check_token_producer(
        self,
        entry: FunctionInfo,
        dispatcher: FunctionInfo,
        dispatch: WorkerDispatch,
    ) -> None:
        parents = self.program.reachable([entry.qname])
        resolves_tokens = any(
            "broadcast_get" in self.program.facts(qname).called_names
            for qname in parents
        )
        if not resolves_tokens:
            return
        if "broadcast" in self.program.facts(dispatcher.qname).called_names:
            return
        self.report(
            dispatcher.module,
            dispatch.node.lineno, dispatch.node.col_offset + 1,
            f"worker entry {entry.name!r} resolves broadcast tokens "
            f"but {dispatcher.name!r} never calls broadcast(...) — "
            "tokens without a parent-side producer fail only at "
            "worker runtime",
        )


# -- R011: memo-coherence -----------------------------------------------------


@dataclass(frozen=True, slots=True)
class MemoGuard:
    """One parsed ``# repro: memo-guard`` declaration."""

    class_qname: str
    version: str
    fields: tuple[str, ...]
    lineno: int


def _self_attr(node: ast.AST) -> str | None:
    """The first attribute name hanging off ``self`` in a target chain
    (``self._providers[asn].x`` → ``_providers``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


class MemoCoherenceChecker(ProgramChecker):
    """R011 — guarded fields are never mutated without a version bump.

    The guard grammar — a ``repro: memo-guard`` comment written
    anywhere inside the class body::

        repro: memo-guard version=_version fields=_providers,_customers

    declares that some memo (``p2c_edges``, the external adjacency
    cache) is keyed on ``self._version`` and reads the listed fields.
    Every method of the class that mutates a guarded field — attribute/
    subscript assignment, ``del``, or a mutating method call rooted at
    ``self.<field>`` — must also write ``self._version`` (directly, or
    by calling a same-class method that does). Guards naming attributes
    the class never assigns are themselves flagged: a stale guard is a
    hole in the invariant.
    """

    rule_id = "R011"

    def check(self) -> None:
        for guard in self._collect_guards():
            self._check_guard(guard)

    def _collect_guards(self) -> list[MemoGuard]:
        guards: list[MemoGuard] = []
        for module in sorted(self.program.modules):
            info = self.program.modules[module]
            for index, line in enumerate(info.lines, start=1):
                match = _MEMO_GUARD_RE.search(line)
                if match is None:
                    continue
                owner = self._enclosing_class(module, index)
                if owner is None:
                    self.report(
                        module, index, 1,
                        "memo-guard declared outside a class body — the "
                        "guard must sit inside the class whose fields "
                        "it protects",
                    )
                    continue
                guards.append(MemoGuard(
                    class_qname=owner,
                    version=match.group(1),
                    fields=tuple(
                        part.strip()
                        for part in match.group(2).split(",") if part.strip()
                    ),
                    lineno=index,
                ))
        return guards

    def _enclosing_class(self, module: str, lineno: int) -> str | None:
        best: str | None = None
        best_start = -1
        for qname, cls in self.program.classes.items():
            if cls.module != module:
                continue
            end = getattr(cls.node, "end_lineno", cls.node.lineno)
            if cls.node.lineno <= lineno <= end and (
                cls.node.lineno > best_start
            ):
                best, best_start = qname, cls.node.lineno
        return best

    def _check_guard(self, guard: MemoGuard) -> None:
        cls = self.program.classes[guard.class_qname]
        assigned = self._assigned_attrs(cls.node)
        for attr in (guard.version, *guard.fields):
            if attr not in assigned:
                self.report(
                    cls.module, guard.lineno, 1,
                    f"memo-guard names {attr!r} but "
                    f"{cls.name} never assigns it — fix the guard or "
                    "the class",
                )
        bumpers = self._version_bumpers(cls, guard.version)
        for method_name in sorted(cls.methods):
            qname = cls.methods[method_name]
            fn = self.program.functions[qname]
            if method_name in bumpers:
                continue
            for node, attr, verb in self._field_mutations(
                fn, frozenset(guard.fields)
            ):
                self.report(
                    cls.module,
                    getattr(node, "lineno", fn.node.lineno),
                    getattr(node, "col_offset", 0) + 1,
                    f"{cls.name}.{method_name} {verb} guarded field "
                    f"{attr!r} without bumping {guard.version!r} — the "
                    "memo keyed on it will serve stale results",
                )

    def _assigned_attrs(self, node: ast.ClassDef) -> set[str]:
        attrs: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        attrs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                attrs.add(stmt.target.id)
        # __slots__ string literals double as declarations
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        attrs.add(attr)
            elif isinstance(child, ast.Constant) and isinstance(
                child.value, str
            ):
                attrs.add(child.value)
        return attrs

    def _version_bumpers(self, cls, version: str) -> set[str]:
        """Method names that write ``self.<version>``, directly or via
        a same-class method they call (fixpoint)."""
        direct: set[str] = set()
        calls: dict[str, set[str]] = {}
        for method_name, qname in cls.methods.items():
            fn = self.program.functions[qname]
            called: set[str] = set()
            for node in body_nodes(fn.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr == version
                        ):
                            direct.add(method_name)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    owner = node.func.value
                    if isinstance(owner, ast.Name) and owner.id == "self":
                        called.add(node.func.attr)
            calls[method_name] = called
        bumpers = set(direct)
        changed = True
        while changed:
            changed = False
            for method_name, called in calls.items():
                if method_name not in bumpers and called & bumpers:
                    bumpers.add(method_name)
                    changed = True
        return bumpers

    def _field_mutations(self, fn: FunctionInfo, fields: frozenset[str]):
        for node in body_nodes(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr in fields:
                        yield node, attr, "writes"
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr in fields:
                        yield node, attr, "deletes from"
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATING_METHODS:
                    attr = _self_attr(node.func.value)
                    if attr in fields:
                        yield node, attr, f"calls .{node.func.attr}() on"


# -- R012: spec purity --------------------------------------------------------


class SpecPurityChecker(ProgramChecker):
    """R012 — registry compute callables are transitively pure.

    Entry points are every callable wired as ``MetricSpec(...,
    compute=<name>)`` anywhere in the program (the registry's
    module-level ``register(MetricSpec(...))`` calls). From their union
    reachable set — dynamic fallback edges included — three hazard
    kinds are flagged: unseeded RNG (R001's detector, but regardless of
    module), wall-clock reads outside the obs allowlist, and mutation
    of a non-self parameter (a compute that edits its ctx poisons every
    cached product built from it).
    """

    rule_id = "R012"

    def check(self) -> None:
        entries = self._compute_entries()
        if not entries:
            return
        parents = self.program.reachable(sorted(entries))
        reported: set[tuple[str, int, int, str]] = set()
        for qname in sorted(parents):
            fn = self.program.functions[qname]
            facts = self.program.facts(qname)
            chain = _short_chain(parents, qname)
            for hazard in facts.rng:
                self._report_once(
                    reported, fn, hazard,
                    f"unseeded RNG on a MetricSpec.compute path "
                    f"({chain}): {hazard.detail}",
                )
            for hazard in facts.clocks:
                if _clock_allowed(fn.module):
                    continue
                self._report_once(
                    reported, fn, hazard,
                    f"wall-clock read on a MetricSpec.compute path "
                    f"({chain}): {hazard.detail}",
                )
            for hazard in facts.param_mutations:
                self._report_once(
                    reported, fn, hazard,
                    f"parameter mutation on a MetricSpec.compute path "
                    f"({chain}): {hazard.detail} — computes must be "
                    "pure functions of (spec, ctx)",
                )

    def _report_once(
        self,
        reported: set[tuple[str, int, int, str]],
        fn: FunctionInfo,
        hazard: Hazard,
        message: str,
    ) -> None:
        key = (fn.module, hazard.lineno, hazard.col, hazard.kind)
        if key in reported:
            return
        reported.add(key)
        self.report_hazard(fn, hazard, message)

    def _compute_entries(self) -> set[str]:
        entries: set[str] = set()
        for module in sorted(self.program.modules):
            info = self.program.modules[module]
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                if name != "MetricSpec":
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "compute":
                        continue
                    value = keyword.value
                    resolved: str | None = None
                    if isinstance(value, ast.Name):
                        resolved = self.program.resolve_name(
                            module, value.id
                        )
                    elif isinstance(value, ast.Attribute) and isinstance(
                        value.value, ast.Name
                    ):
                        aliases, _ = self.program.imports.get(
                            module, ({}, {})
                        )
                        target = aliases.get(value.value.id)
                        if target is not None:
                            resolved = f"{target}.{value.attr}"
                    if resolved is not None and (
                        resolved in self.program.functions
                    ):
                        entries.add(resolved)
        return entries


#: every whole-program checker, in rule-id order
PROGRAM_CHECKERS: tuple[type[ProgramChecker], ...] = (
    ForkSafetyChecker,
    BroadcastDisciplineChecker,
    MemoCoherenceChecker,
    SpecPurityChecker,
)
