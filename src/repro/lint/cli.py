"""The ``repro-lint`` command-line interface.

Exit codes: ``0`` clean (against the baseline), ``1`` findings or parse
errors, ``2`` usage errors, ``3`` runtime-guard breach
(``--max-seconds``). Typical invocations::

    repro-lint src tests                    # lint, text report
    repro-lint src --format json            # machine-readable
    repro-lint src --format sarif           # SARIF 2.1.0 for CI annotation
    repro-lint src --select R001,R003       # a subset of rules
    repro-lint src --write-baseline         # grandfather current findings
    repro-lint --list-rules                 # the rule catalog
    repro-lint src tests --max-seconds 5    # CI runtime guard

The baseline defaults to ``lint-baseline.json`` in the current
directory when it exists; ``--baseline`` points elsewhere and
``--no-baseline`` disables it. The runtime guard reads its elapsed
time from the run's obs tracer span — the linter itself obeys R002
(no wall-clock reads outside ``repro.obs``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import DEFAULT_EXCLUDES, LintConfig, run_lint
from repro.lint.report import (
    emit_metrics,
    render_json,
    render_rules,
    render_sarif,
    render_stats,
    render_text,
)
from repro.lint.rules import ALL_RULE_IDS
from repro.lint.suppress import Baseline
from repro.obs.trace import Tracer

#: exit statuses (0 = clean)
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_TOO_SLOW = 3

DEFAULT_BASELINE = "lint-baseline.json"


def _parse_rule_list(raw: str) -> frozenset[str]:
    rules = frozenset(part.strip().upper() for part in raw.split(",") if part.strip())
    unknown = rules - set(ALL_RULE_IDS)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(ALL_RULE_IDS)})"
        )
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro pipeline: "
            "determinism, purity, and metric-correctness rules"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
    )
    parser.add_argument(
        "--select", type=_parse_rule_list, default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", type=_parse_rule_list, default=frozenset(),
        metavar="RULES", help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="NAME",
        help="directory name to skip during expansion "
             f"(default: {', '.join(DEFAULT_EXCLUDES)})",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="fail (exit 3) if the lint run takes longer than S seconds",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append the per-rule findings breakdown",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (also exposed as the ``repro-lint`` script)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0

    baseline: Baseline | None = None
    baseline_path = args.baseline or DEFAULT_BASELINE
    if not args.no_baseline and not args.write_baseline:
        if Path(baseline_path).is_file():
            baseline = Baseline.load(baseline_path)
        elif args.baseline is not None:
            print(
                f"repro-lint: error: baseline {args.baseline!r} not found",
                file=sys.stderr,
            )
            return EXIT_USAGE

    config = LintConfig(
        select=args.select,
        ignore=args.ignore,
        exclude=tuple(args.exclude) if args.exclude else DEFAULT_EXCLUDES,
        baseline=baseline,
    )
    tracer = Tracer()
    result = run_lint(args.paths, config, tracer)
    emit_metrics(result, tracer.metrics)

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path} — "
            "fill in the justification fields"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
        if args.stats:
            print(render_stats(result))

    if args.max_seconds is not None:
        elapsed = tracer.find("lint")[0].dur_s
        if elapsed > args.max_seconds:
            print(
                f"repro-lint: error: lint took {elapsed:.2f}s, over the "
                f"--max-seconds {args.max_seconds:g} budget",
                file=sys.stderr,
            )
            return EXIT_TOO_SLOW

    return 0 if result.ok() else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
