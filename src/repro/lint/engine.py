"""The lint engine: file discovery, rule dispatch, suppression.

``run_lint`` is the library entry point used by the ``repro-lint`` CLI,
the ``repro-rank lint`` subcommand, and the self-lint test::

    result = run_lint(["src", "tests"], LintConfig(baseline=baseline))
    assert result.ok()

Pipeline per file: parse once, run every applicable checker over the
tree, then filter findings through inline ``# repro: noqa[...]``
directives and the baseline. Everything is deterministic: files are
visited in sorted path order and findings are reported in
(path, line, col, rule) order.

Module scoping: rules like R002 (exempt ``repro.obs``) and R007 (only
``repro.perf``) need a dotted module name. It is derived from the path
(anchored at a ``src`` or ``tests`` component) and can be overridden by
a ``# repro-lint: module=<dotted>`` directive in the file's first few
lines — which is how the fixture corpus exercises module-scoped rules
from outside the package tree.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.rules import ALL_RULE_IDS, PROGRAM_RULE_IDS, Finding
from repro.lint.suppress import Baseline, is_suppressed
from repro.lint.visitors import ALL_CHECKERS, FileContext
from repro.lint.wprules import PROGRAM_CHECKERS
from repro.obs.trace import NULL_TRACER

#: directory-name components skipped during directory expansion
#: (explicitly named files are always linted)
DEFAULT_EXCLUDES: tuple[str, ...] = ("fixtures", "__pycache__")

_MODULE_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*module=([A-Za-z_][A-Za-z0-9_.]*)"
)
#: how many leading lines may carry a ``repro-lint:`` directive
_DIRECTIVE_WINDOW = 5

#: content-hash AST cache: the whole-program tier re-reads the same
#: files the per-file tier just parsed, and the self-lint test plus the
#: CLI lint the tree back to back — identical content must parse once
_AST_CACHE: dict[str, ast.Module] = {}
_AST_CACHE_MAX = 1024


def parse_cached(source: str, path: str) -> ast.Module:
    """``ast.parse`` memoised on a content hash (not the path: a file
    touched but unchanged, or fixture content duplicated under two
    paths, still hits)."""
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    tree = _AST_CACHE.get(key)
    if tree is None:
        if len(_AST_CACHE) >= _AST_CACHE_MAX:
            _AST_CACHE.clear()
        tree = ast.parse(source, filename=path)
        _AST_CACHE[key] = tree
    return tree


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Knobs for one lint run."""

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    exclude: tuple[str, ...] = DEFAULT_EXCLUDES
    baseline: Baseline | None = None

    def active_rule_ids(self) -> tuple[str, ...]:
        selected = self.select if self.select is not None else set(ALL_RULE_IDS)
        return tuple(
            rule_id for rule_id in ALL_RULE_IDS
            if rule_id in selected and rule_id not in self.ignore
        )


@dataclass(slots=True)
class LintResult:
    """Everything one run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed_noqa: int = 0
    suppressed_baseline: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)

    def ok(self) -> bool:
        """Whether the run is clean: no findings, no parse failures,
        and no stale baseline entries (an entry whose finding no longer
        fires is debt the baseline must shed — the run fails until the
        entry is removed)."""
        return (
            not self.findings
            and not self.parse_errors
            and not self.stale_baseline
        )

    def findings_by_rule(self) -> dict[str, int]:
        """Unsuppressed finding count per rule id (all rules, sorted)."""
        counts = {rule_id: 0 for rule_id in ALL_RULE_IDS}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def stats(self) -> dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": len(self.findings),
            "findings_by_rule": self.findings_by_rule(),
            "suppressed_noqa": self.suppressed_noqa,
            "suppressed_baseline": self.suppressed_baseline,
            "stale_baseline": len(self.stale_baseline),
            "parse_errors": len(self.parse_errors),
        }


def iter_python_files(
    paths: list[str], exclude: tuple[str, ...] = DEFAULT_EXCLUDES
) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted and deduplicated.

    Directory arguments are expanded recursively, skipping any
    directory whose name is in ``exclude`` or starts with a dot; file
    arguments are taken as-is (so fixtures can be linted explicitly).
    """
    excluded = set(exclude)
    out: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.setdefault(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            parts = relative.parts[:-1]
            if any(part in excluded or part.startswith(".") for part in parts):
                continue
            out.setdefault(candidate)
    return sorted(out)


def module_name(path: Path, source: str | None = None) -> str:
    """The dotted module name used for rule scoping.

    Honors a ``# repro-lint: module=...`` directive in the first few
    lines; otherwise anchors at the last ``src`` component (package
    layout) or the last ``tests`` component, falling back to the stem.
    """
    if source is not None:
        for line in source.splitlines()[:_DIRECTIVE_WINDOW]:
            match = _MODULE_DIRECTIVE_RE.search(line)
            if match is not None:
                return match.group(1)
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("src", "tests"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[index + 1:] if anchor == "src" else parts[index:]
            if tail:
                return ".".join(tail)
    return parts[-1] if parts else ""


def lint_source(
    source: str,
    path: str,
    config: LintConfig | None = None,
    module: str | None = None,
    program_tier: bool = True,
) -> list[Finding]:
    """Lint one source string (raises ``SyntaxError`` on parse failure).

    Findings are rule-filtered (``select`` / ``ignore``) but raw
    otherwise — ``# repro: noqa`` directives and the baseline apply at
    :func:`run_lint` level.

    When any whole-program rule (R009–R012) is active and the module is
    in the ``repro`` namespace, the file is also checked as a one-module
    program — which is how the fixture corpus exercises the program
    tier file by file. :func:`run_lint` passes ``program_tier=False``
    and runs one program pass over all files instead.
    """
    if config is None:
        config = LintConfig()
    tree = parse_cached(source, path)
    resolved_module = (
        module if module is not None else module_name(Path(path), source)
    )
    ctx = FileContext(
        path=path,
        module=resolved_module,
        lines=source.splitlines(),
    )
    active = set(config.active_rule_ids())
    findings: list[Finding] = []
    for checker_cls in ALL_CHECKERS:
        if checker_cls.rule_id not in active:
            continue
        if not checker_cls.applies_to(ctx.module):
            continue
        findings.extend(checker_cls(ctx).run(tree))
    if (
        program_tier
        and active & set(PROGRAM_RULE_IDS)
        and _in_program(resolved_module)
    ):
        program = Program([ModuleInfo(
            module=resolved_module, path=path, tree=tree, lines=ctx.lines,
        )])
        findings.extend(_run_program_checkers(program, active))
    findings.sort(key=Finding.sort_key)
    return findings


def _in_program(module: str) -> bool:
    """Whether a module participates in the whole-program tier: the
    production ``repro`` namespace (tests and scripts dispatch workers
    too, but their module state is not the pipeline's)."""
    return module == "repro" or module.startswith("repro.")


def _run_program_checkers(
    program: Program,
    active: set[str],
    tracer=NULL_TRACER,
) -> list[Finding]:
    """Run every active whole-program checker, one tracer span each
    (``lint.rule.r009`` … — per-rule timing in the stage report)."""
    findings: list[Finding] = []
    for checker_cls in PROGRAM_CHECKERS:
        if checker_cls.rule_id not in active:
            continue
        with tracer.span(f"lint.rule.{checker_cls.rule_id.lower()}") as span:
            rule_findings = checker_cls(program).run()
            span.set(findings=len(rule_findings))
        findings.extend(rule_findings)
    return findings


def lint_file(
    path: Path, config: LintConfig | None = None, module: str | None = None
) -> list[Finding]:
    """Lint one file from disk (see :func:`lint_source`)."""
    return lint_source(
        path.read_text(encoding="utf-8"),
        path.as_posix(),
        config,
        module,
    )


def run_lint(
    paths: list[str],
    config: LintConfig | None = None,
    tracer=NULL_TRACER,
) -> LintResult:
    """Lint every Python file under ``paths`` and apply suppressions.

    Runs under a ``lint`` tracer span; stats are emitted into the
    tracer's metrics registry by :func:`repro.lint.report.emit_metrics`
    (called by the CLI so library users keep control of when).
    """
    if config is None:
        config = LintConfig()
    result = LintResult()
    active = set(config.active_rule_ids())
    program_modules: list[ModuleInfo] = []
    lines_by_path: dict[str, list[str]] = {}
    with tracer.span("lint", paths=",".join(paths)) as span:
        for path in iter_python_files(paths, config.exclude):
            result.files_scanned += 1
            try:
                source = path.read_text(encoding="utf-8")
                raw = lint_source(
                    source, path.as_posix(), config, program_tier=False
                )
            except SyntaxError as error:
                result.parse_errors.append((path.as_posix(), str(error)))
                continue
            lines = source.splitlines()
            lines_by_path[path.as_posix()] = lines
            if active & set(PROGRAM_RULE_IDS):
                module = module_name(path, source)
                if _in_program(module):
                    program_modules.append(ModuleInfo(
                        module=module,
                        path=path.as_posix(),
                        tree=parse_cached(source, path.as_posix()),
                        lines=lines,
                    ))
            _apply_suppressions(result, raw, lines, config)
        if program_modules:
            with tracer.span(
                "lint.program", modules=len(program_modules)
            ):
                program = Program(program_modules)
            raw = _run_program_checkers(program, active, tracer)
            for finding in raw:
                finding_lines = lines_by_path.get(finding.path, [])
                line = (
                    finding_lines[finding.line - 1]
                    if 1 <= finding.line <= len(finding_lines) else ""
                )
                if is_suppressed(finding, line):
                    result.suppressed_noqa += 1
                elif config.baseline is not None and (
                    config.baseline.suppresses(finding)
                ):
                    result.suppressed_baseline += 1
                else:
                    result.findings.append(finding)
        if config.baseline is not None:
            result.stale_baseline = config.baseline.stale_entries()
        result.findings.sort(key=Finding.sort_key)
        span.set(
            files=result.files_scanned,
            findings=len(result.findings),
            suppressed=result.suppressed_noqa + result.suppressed_baseline,
        )
    return result


def _apply_suppressions(
    result: LintResult,
    raw: list[Finding],
    lines: list[str],
    config: LintConfig,
) -> None:
    for finding in raw:
        line = (
            lines[finding.line - 1]
            if 1 <= finding.line <= len(lines) else ""
        )
        if is_suppressed(finding, line):
            result.suppressed_noqa += 1
        elif config.baseline is not None and (
            config.baseline.suppresses(finding)
        ):
            result.suppressed_baseline += 1
        else:
            result.findings.append(finding)
