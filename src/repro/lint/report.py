"""Reporters: text, JSON, SARIF 2.1.0, and obs metrics emission.

The text reporter is what ``make lint`` prints; the JSON reporter is
for tooling (stable key order, one object per finding); the SARIF
reporter (``--format sarif`` / ``make lint-sarif``) emits the OASIS
SARIF 2.1.0 shape consumed by standard CI annotation tooling (GitHub
code scanning, VS Code SARIF viewers); and ``emit_metrics`` pushes the
run's stats into a :class:`repro.obs.metrics.MetricsRegistry` under the
``lint.*`` namespace so a traced run (``repro-rank lint --trace``)
reports them alongside the pipeline's own instruments:

==========================  =======  ==================================
name                        kind     meaning
==========================  =======  ==================================
lint.files                  counter  files scanned
lint.findings               counter  unsuppressed findings
lint.findings.r001 … r012   counter  unsuppressed findings per rule
lint.suppressed.noqa        counter  findings silenced by inline noqa
lint.suppressed.baseline    counter  findings grandfathered by baseline
lint.baseline.stale         gauge    baseline entries matching nothing
==========================  =======  ==================================
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.rules import RULES

#: the SARIF 2.1.0 schema URI (OASIS errata01 canonical location)
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if verbose and finding.code:
            lines.append(f"    {finding.code}")
    for path, error in result.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    for entry in result.stale_baseline:
        lines.append(
            f"error: stale baseline entry {entry.rule} for {entry.path} "
            f"({entry.code!r}) — the finding no longer fires; remove the "
            "entry (stale entries fail the run)"
        )
    suppressed = result.suppressed_noqa + result.suppressed_baseline
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_scanned} "
        f"file(s); {suppressed} suppressed "
        f"({result.suppressed_noqa} noqa, "
        f"{result.suppressed_baseline} baseline)"
    )
    return "\n".join(lines)


def render_stats(result: LintResult) -> str:
    """The per-rule breakdown appended under ``--stats``."""
    lines = ["findings by rule:"]
    for rule_id, count in result.findings_by_rule().items():
        rule = RULES[rule_id]
        lines.append(f"  {rule_id} {rule.name:<22} {count}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report (stable key order)."""
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "parse_errors": [
            {"path": path, "error": error}
            for path, error in result.parse_errors
        ],
        "stale_baseline": [
            entry.as_dict() for entry in result.stale_baseline
        ],
        "stats": result.stats(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """The findings as a SARIF 2.1.0 log (one run, stable ordering).

    Every catalog rule appears in the driver's ``rules`` array (so
    viewers can show the invariant text even for clean runs) and each
    finding references its rule by ``ruleId`` + ``ruleIndex``. Parse
    errors and stale baseline entries — conditions of the *run* rather
    than of a source region — surface as tool execution notifications
    on the invocation, which also carries ``executionSuccessful``.
    """
    rule_ids = list(RULES)
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.invariant},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in RULES.values()
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_ids.index(finding.rule_id),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                            "snippet": {"text": finding.code},
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    notifications = [
        {
            "level": "error",
            "message": {"text": f"parse error in {path}: {error}"},
        }
        for path, error in result.parse_errors
    ] + [
        {
            "level": "error",
            "message": {
                "text": (
                    f"stale baseline entry {entry.rule} for {entry.path} "
                    f"({entry.code!r}) — remove it"
                )
            },
        }
        for entry in result.stale_baseline
    ]
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": result.ok(),
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(log, indent=2)


def render_rules() -> str:
    """The ``--list-rules`` catalog: id, name, summary, invariant."""
    lines: list[str] = []
    for rule in RULES.values():
        lines.append(f"{rule.id} {rule.name}: {rule.summary}")
        lines.append(f"     protects: {rule.invariant}")
    return "\n".join(lines)


def emit_metrics(result: LintResult, metrics) -> None:
    """Record the run's stats in an obs metrics registry (``lint.*``)."""
    metrics.counter("lint.files").inc(result.files_scanned)
    metrics.counter("lint.findings").inc(len(result.findings))
    for rule_id, count in result.findings_by_rule().items():
        metrics.counter(f"lint.findings.{rule_id.lower()}").inc(count)
    metrics.counter("lint.suppressed.noqa").inc(result.suppressed_noqa)
    metrics.counter("lint.suppressed.baseline").inc(
        result.suppressed_baseline
    )
    metrics.gauge("lint.baseline.stale").set(len(result.stale_baseline))
