"""Reporters: human-readable text, JSON, and obs metrics emission.

The text reporter is what ``make lint`` prints; the JSON reporter is
for tooling (stable key order, one object per finding); and
``emit_metrics`` pushes the run's stats into a
:class:`repro.obs.metrics.MetricsRegistry` under the ``lint.*``
namespace so a traced run (``repro-rank lint --trace``) reports them
alongside the pipeline's own instruments:

==========================  =======  ==================================
name                        kind     meaning
==========================  =======  ==================================
lint.files                  counter  files scanned
lint.findings               counter  unsuppressed findings
lint.findings.r001 … r008   counter  unsuppressed findings per rule
lint.suppressed.noqa        counter  findings silenced by inline noqa
lint.suppressed.baseline    counter  findings grandfathered by baseline
lint.baseline.stale         gauge    baseline entries matching nothing
==========================  =======  ==================================
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.rules import RULES


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if verbose and finding.code:
            lines.append(f"    {finding.code}")
    for path, error in result.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    for entry in result.stale_baseline:
        lines.append(
            f"warning: stale baseline entry {entry.rule} for {entry.path} "
            f"({entry.code!r}) — remove it from the baseline"
        )
    suppressed = result.suppressed_noqa + result.suppressed_baseline
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_scanned} "
        f"file(s); {suppressed} suppressed "
        f"({result.suppressed_noqa} noqa, "
        f"{result.suppressed_baseline} baseline)"
    )
    return "\n".join(lines)


def render_stats(result: LintResult) -> str:
    """The per-rule breakdown appended under ``--stats``."""
    lines = ["findings by rule:"]
    for rule_id, count in result.findings_by_rule().items():
        rule = RULES[rule_id]
        lines.append(f"  {rule_id} {rule.name:<22} {count}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report (stable key order)."""
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "parse_errors": [
            {"path": path, "error": error}
            for path, error in result.parse_errors
        ],
        "stale_baseline": [
            entry.as_dict() for entry in result.stale_baseline
        ],
        "stats": result.stats(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The ``--list-rules`` catalog: id, name, summary, invariant."""
    lines: list[str] = []
    for rule in RULES.values():
        lines.append(f"{rule.id} {rule.name}: {rule.summary}")
        lines.append(f"     protects: {rule.invariant}")
    return "\n".join(lines)


def emit_metrics(result: LintResult, metrics) -> None:
    """Record the run's stats in an obs metrics registry (``lint.*``)."""
    metrics.counter("lint.files").inc(result.files_scanned)
    metrics.counter("lint.findings").inc(len(result.findings))
    for rule_id, count in result.findings_by_rule().items():
        metrics.counter(f"lint.findings.{rule_id.lower()}").inc(count)
    metrics.counter("lint.suppressed.noqa").inc(result.suppressed_noqa)
    metrics.counter("lint.suppressed.baseline").inc(
        result.suppressed_baseline
    )
    metrics.gauge("lint.baseline.stale").set(len(result.stale_baseline))
