"""repro.lint — an AST-based invariant checker for the pipeline.

The reproduction guarantees byte-identical rankings for any worker
count and exact cross-metric caches; those invariants are one unseeded
``random.Random()``, one hash-ordered iteration, or one float ``==`` on
a hegemony score away from silently breaking. This package turns them
into machine-checked rules that run as ``repro-lint`` /
``repro-rank lint`` / ``make lint``, in two tiers:

* **per-file** (R001–R008, :mod:`repro.lint.visitors`) — one AST at a
  time;
* **whole-program** (R009–R012, :mod:`repro.lint.wprules`) — a symbol
  table and conservative call graph over every module at once
  (:mod:`repro.lint.callgraph`), answering reachability questions the
  per-file tier cannot: fork-safety of worker-reachable code, broadcast
  token discipline, memo/version coherence, and transitive purity of
  registry compute callables.

Library use::

    from repro.lint import Baseline, LintConfig, run_lint

    result = run_lint(["src", "tests"],
                      LintConfig(baseline=Baseline.load("lint-baseline.json")))
    assert result.ok(), result.findings
"""

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.engine import (
    DEFAULT_EXCLUDES,
    LintConfig,
    LintResult,
    iter_python_files,
    lint_file,
    lint_source,
    module_name,
    parse_cached,
    run_lint,
)
from repro.lint.rules import (
    ALL_RULE_IDS,
    PROGRAM_RULE_IDS,
    RULES,
    Finding,
    Rule,
)
from repro.lint.suppress import Baseline, BaselineEntry

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_EXCLUDES",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "PROGRAM_RULE_IDS",
    "Program",
    "RULES",
    "Rule",
    "iter_python_files",
    "lint_file",
    "lint_source",
    "module_name",
    "parse_cached",
    "run_lint",
]
