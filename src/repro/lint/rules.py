"""The rule catalog: ids, names, and the invariants they protect.

Each rule is a :class:`Rule` record plus a checker class in
:mod:`repro.lint.visitors`. The catalog is the single source of truth:
reporters, the CLI's ``--list-rules``, suppression validation, and the
fixture tests all read it. Rule ids are stable (``R001``–``R008``);
retired ids are never reused.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule's identity and documentation."""

    id: str
    name: str
    summary: str
    #: the pipeline invariant the rule protects (see DESIGN.md §5)
    invariant: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "R001",
            "unseeded-rng",
            "unseeded RNG construction or module-level random.* call",
            "same seed ⇒ same world, same rankings: every RNG must be "
            "derived from an explicit seed",
        ),
        Rule(
            "R002",
            "wall-clock",
            "wall-clock read outside repro.obs",
            "metric values are deterministic for a fixed seed; only the "
            "observability layer may read clocks",
        ),
        Rule(
            "R003",
            "unordered-iteration",
            "set/frozenset iteration feeding returned or yielded "
            "ordered data without sorted(...)",
            "workers=N byte-identical guarantee: ordered output must "
            "never depend on hash iteration order",
        ),
        Rule(
            "R004",
            "float-equality",
            "float == / != on a score-like expression",
            "hegemony/cone scores are floats; exact comparison hides "
            "platform and summation-order sensitivity — use "
            "math.isclose or exact-integer accounting",
        ),
        Rule(
            "R005",
            "mutable-default",
            "mutable default argument",
            "call-to-call state leakage breaks run-to-run "
            "reproducibility of repeated pipeline invocations",
        ),
        Rule(
            "R006",
            "swallowed-exception",
            "bare or overbroad except that swallows errors",
            "a silently absorbed error turns a crash into a silently "
            "wrong ranking",
        ),
        Rule(
            "R007",
            "perf-mutation",
            "mutation of a View/PathSet/Ranking/PathStore parameter "
            "inside repro.perf",
            "cache correctness: cached products must be exactly what "
            "the naive path would build, so shared inputs are "
            "read-only in the batch engine",
        ),
        Rule(
            "R008",
            "metric-name",
            "metric name violating the stage.metric_name dotted-"
            "lowercase convention, or a ranking metric missing from "
            "the repro.core.registry catalog",
            "the repro.obs namespace is documented and machine-"
            "consumed (Prometheus export) and ranking metrics have one "
            "source of truth (the registry); names must stay resolvable",
        ),
    )
}


#: all rule ids, in catalog order
ALL_RULE_IDS: tuple[str, ...] = tuple(RULES)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: the stripped source line, used for baseline matching
    code: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "code": self.code,
        }
