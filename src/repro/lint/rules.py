"""The rule catalog: ids, names, and the invariants they protect.

Each rule is a :class:`Rule` record plus a checker class in
:mod:`repro.lint.visitors` (per-file rules, ``R001``–``R008``) or
:mod:`repro.lint.wprules` (whole-program rules, ``R009``–``R012``,
which run over the call graph built by :mod:`repro.lint.callgraph`).
The catalog is the single source of truth: reporters, the CLI's
``--list-rules``, suppression validation, the SARIF ``rules`` array,
and the fixture tests all read it. Rule ids are stable; retired ids
are never reused.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule's identity and documentation."""

    id: str
    name: str
    summary: str
    #: the pipeline invariant the rule protects (see DESIGN.md §5)
    invariant: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "R001",
            "unseeded-rng",
            "unseeded RNG construction or module-level random.* call",
            "same seed ⇒ same world, same rankings: every RNG must be "
            "derived from an explicit seed",
        ),
        Rule(
            "R002",
            "wall-clock",
            "wall-clock read outside repro.obs",
            "metric values are deterministic for a fixed seed; only the "
            "observability layer may read clocks",
        ),
        Rule(
            "R003",
            "unordered-iteration",
            "set/frozenset iteration feeding returned or yielded "
            "ordered data without sorted(...)",
            "workers=N byte-identical guarantee: ordered output must "
            "never depend on hash iteration order",
        ),
        Rule(
            "R004",
            "float-equality",
            "float == / != on a score-like expression",
            "hegemony/cone scores are floats; exact comparison hides "
            "platform and summation-order sensitivity — use "
            "math.isclose or exact-integer accounting",
        ),
        Rule(
            "R005",
            "mutable-default",
            "mutable default argument",
            "call-to-call state leakage breaks run-to-run "
            "reproducibility of repeated pipeline invocations",
        ),
        Rule(
            "R006",
            "swallowed-exception",
            "bare or overbroad except that swallows errors",
            "a silently absorbed error turns a crash into a silently "
            "wrong ranking",
        ),
        Rule(
            "R007",
            "perf-mutation",
            "mutation of a View/PathSet/Ranking/PathStore parameter "
            "inside repro.perf",
            "cache correctness: cached products must be exactly what "
            "the naive path would build, so shared inputs are "
            "read-only in the batch engine",
        ),
        Rule(
            "R008",
            "metric-name",
            "metric name violating the stage.metric_name dotted-"
            "lowercase convention, or a ranking metric missing from "
            "the repro.core.registry catalog",
            "the repro.obs namespace is documented and machine-"
            "consumed (Prometheus export) and ranking metrics have one "
            "source of truth (the registry); names must stay resolvable",
        ),
        Rule(
            "R009",
            "fork-safety",
            "write to module-level state in a function reachable from "
            "a worker-pool chunk entry point",
            "fork isolation: a worker's module state dies with the "
            "worker, so writes there are silently lost (or, under a "
            "respawned pool, silently different per replay) — only "
            "the sanctioned broadcast registry in repro.perf.pool may "
            "hold cross-process state",
        ),
        Rule(
            "R010",
            "broadcast-discipline",
            "worker payload carrying a heavy world object instead of "
            "a broadcast token, or broadcast_get with no broadcast "
            "producer on the dispatch path",
            "ship-once economics and replay correctness: heavy state "
            "(ASGraph/PathSet/View/PathStore) crosses the process "
            "boundary exactly once via pool.broadcast, and every "
            "token a worker resolves must have a parent-side producer",
        ),
        Rule(
            "R011",
            "memo-coherence",
            "method mutating a field consulted by a version-memoised "
            "property without bumping the version "
            "(# repro: memo-guard)",
            "cache coherence: version-memoised products (p2c_edges, "
            "the adjacency snapshot) must be recomputed after any "
            "mutation of the fields they read — a missed version bump "
            "serves stale bytes forever",
        ),
        Rule(
            "R012",
            "spec-purity",
            "MetricSpec.compute callable transitively reaching "
            "unseeded RNG, a wall-clock read, or a parameter mutation",
            "registry purity: every metric compute is a pure function "
            "of (spec, ctx), so cached/checkpointed rankings are "
            "byte-identical to a fresh compute — checked by call-graph "
            "reachability, not per-module scoping",
        ),
    )
}


#: all rule ids, in catalog order
ALL_RULE_IDS: tuple[str, ...] = tuple(RULES)

#: the whole-program tier (checked via the call graph, not per file)
PROGRAM_RULE_IDS: tuple[str, ...] = ("R009", "R010", "R011", "R012")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: the stripped source line, used for baseline matching
    code: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "code": self.code,
        }
