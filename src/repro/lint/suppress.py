"""Suppression: inline ``# repro: noqa[...]`` and the checked-in baseline.

Two escape hatches, with different intended lifetimes:

* An **inline directive** on the flagged line silences it at the
  source::

      if total == 0.0:  # repro: noqa[R004]

  ``# repro: noqa`` with no bracket silences every rule on that line;
  ``# repro: noqa[R004,R006]`` silences just those. Use it when the
  exception is obvious in context.

* The **baseline** (``lint-baseline.json``) grandfathers findings
  without touching the source. Entries match on *(rule, path suffix,
  stripped source line)* — never on line numbers, so unrelated edits
  don't invalidate them — and each carries a one-line justification.
  Entries that no longer match anything are reported as *stale* so the
  file shrinks as code is fixed.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.lint.rules import Finding

#: matches the inline directive; group "rules" is the bracket body
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?",
)

#: sentinel meaning "every rule is suppressed on this line"
ALL_RULES = frozenset(("*",))


def suppressed_rules(source_line: str) -> frozenset[str] | None:
    """The rule ids a line's directive suppresses.

    ``None`` when the line carries no directive; :data:`ALL_RULES` for
    a blanket ``# repro: noqa``; otherwise the listed ids.
    """
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    body = match.group("rules")
    if body is None:
        return ALL_RULES
    return frozenset(part.strip() for part in body.split(",") if part.strip())


def is_suppressed(finding: Finding, source_line: str) -> bool:
    """Whether the line's directive covers the finding's rule."""
    rules = suppressed_rules(source_line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or finding.rule_id in rules


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    code: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule_id or self.code != finding.code:
            return False
        found = Path(finding.path).as_posix()
        want = Path(self.path).as_posix()
        return found == want or found.endswith("/" + want)

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "code": self.code,
            "justification": self.justification,
        }


class Baseline:
    """The set of grandfathered findings, with staleness tracking.

    One entry suppresses *every* occurrence of its (rule, path, code)
    triple — duplicated identical lines in one file share an entry.
    """

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()) -> None:
        self.entries = entries
        self._used: set[BaselineEntry] = set()

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text())
        entries = tuple(
            BaselineEntry(
                rule=entry["rule"],
                path=entry["path"],
                code=entry["code"],
                justification=entry.get("justification", ""),
            )
            for entry in raw.get("entries", ())
        )
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        """A fresh baseline grandfathering the given findings."""
        seen: dict[tuple[str, str, str], BaselineEntry] = {}
        for finding in sorted(findings, key=Finding.sort_key):
            key = (finding.rule_id, finding.path, finding.code)
            if key not in seen:
                seen[key] = BaselineEntry(
                    rule=finding.rule_id,
                    path=Path(finding.path).as_posix(),
                    code=finding.code,
                    justification=justification,
                )
        return cls(tuple(seen.values()))

    def suppresses(self, finding: Finding) -> bool:
        """Whether an entry grandfathers the finding (marks it used)."""
        for entry in self.entries:
            if entry.matches(finding):
                self._used.add(entry)
                return True
        return False

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched nothing in the run just completed."""
        return [entry for entry in self.entries if entry not in self._used]

    def save(self, path: str | Path) -> None:
        payload = {
            "version": 1,
            "entries": [entry.as_dict() for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")
