"""Lightweight span tracing for the pipeline.

A :class:`Tracer` records a tree of timed *spans*::

    with tracer.span("sanitize", input=n) as span:
        ...
        span.set(output=len(out))

Each closed span becomes an immutable :class:`SpanRecord` carrying
wall-clock duration, CPU time, optional ``tracemalloc`` peak memory,
and a free-form attribute dict (conventionally the stage's input /
output volumes). Spans nest via an explicit stack, so the records form
a forest: anything opened while another span is live becomes its child,
and rankings computed lazily after the run start fresh roots.

Everything except the timing fields is deterministic: span ids are
allocated sequentially, event order follows execution order, and
attributes are whatever the instrumented code put there — two runs with
the same seed produce the same records modulo ``start_s`` / ``dur_s`` /
``cpu_s`` / ``mem_peak``.

Disabled mode is the module-level :data:`NULL_TRACER`: its ``span()``
returns one shared no-op context manager and its ``metrics`` registry
hands out shared no-op instruments, so instrumented code calls the same
methods unconditionally — no ``if tracing:`` branches in hot paths, and
no allocation per call when tracing is off.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

try:  # process peak-RSS sampling; absent on some platforms (Windows)
    import resource as _resource
except ImportError:  # pragma: no cover - POSIX always has it
    _resource = None  # type: ignore[assignment]

#: ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RSS_UNIT = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int | None:
    """The process's lifetime peak resident set size, in bytes.

    Read from ``getrusage`` — the kernel's high-water mark, which sees
    *all* allocations (numpy buffers, mmap'd pages touched, the
    interpreter itself), unlike ``tracemalloc``'s Python-heap view.
    Monotone over the process lifetime; ``None`` where unsupported.
    """
    if _resource is None:  # pragma: no cover
        return None
    return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * _RSS_UNIT


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    #: wall-clock offset from the tracer's creation, seconds
    start_s: float
    dur_s: float
    cpu_s: float
    #: tracemalloc peak (bytes) observed while the span was open, or
    #: ``None`` when memory capture was off
    mem_peak: int | None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def error(self) -> bool:
        """Whether the span closed by propagating an exception."""
        return bool(self.attrs.get("error"))


class Span:
    """A live span; use as a context manager, annotate with :meth:`set`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_wall0", "_cpu0")

    def __init__(
        self, tracer: "Tracer", name: str, parent_id: int | None,
        span_id: int, attrs: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (volumes, counts, labels) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self, dur, cpu)
        return False  # never swallow the exception


class Tracer:
    """Collects spans and owns a :class:`MetricsRegistry`.

    ``capture_memory=True`` starts ``tracemalloc`` (if not already
    running) and records, per span, the peak traced heap observed while
    the span was open. The peak counter is global and only reset when a
    *root* span opens, so nested spans report "peak since my subtree's
    root started" — coarse, but free of per-span bookkeeping.
    """

    enabled = True

    def __init__(
        self,
        capture_memory: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.capture_memory = capture_memory
        #: span name → highest process peak-RSS (bytes) sampled at any
        #: close of a span with that name. Kept out of ``SpanRecord``
        #: attrs on purpose: attrs are part of the determinism contract
        #: (identical across runs), RSS is an environment measurement.
        self.rss_peaks: dict[str, int] = {}
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        self._started_tracemalloc = False
        if capture_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    # -- public API ---------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """Open a new span (child of the innermost live span, if any)."""
        parent_id = self._stack[-1].span_id if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        return Span(self, name, parent_id, span_id, dict(attrs))

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it."""
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False

    def stage_names(self) -> list[str]:
        """Distinct span names in first-recorded order."""
        seen: dict[str, None] = {}
        for record in self.spans:
            seen.setdefault(record.name)
        return list(seen)

    def find(self, name: str) -> list[SpanRecord]:
        """All recorded spans with the given name."""
        return [record for record in self.spans if record.name == name]

    # -- span bookkeeping ---------------------------------------------------

    def _push(self, span: Span) -> None:
        if self.capture_memory and not self._stack:
            import tracemalloc

            tracemalloc.reset_peak()
        self._stack.append(span)

    def _pop(self, span: Span, dur: float, cpu: float) -> None:
        # Close any children an exception left open, innermost first,
        # so the record list stays a well-formed forest.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            self.spans.append(
                SpanRecord(
                    span_id=dangling.span_id,
                    parent_id=dangling.parent_id,
                    name=dangling.name,
                    start_s=dangling._wall0 - self._epoch,
                    dur_s=0.0,
                    cpu_s=0.0,
                    mem_peak=None,
                    attrs={**dangling.attrs, "error": "abandoned"},
                )
            )
        if self._stack:
            self._stack.pop()
        mem_peak: int | None = None
        if self.capture_memory:
            import tracemalloc

            mem_peak = tracemalloc.get_traced_memory()[1]
        rss = peak_rss_bytes()
        if rss is not None:
            if rss > self.rss_peaks.get(span.name, -1):
                self.rss_peaks[span.name] = rss
            self.metrics.gauge("obs.memory.peak_rss_bytes").set(rss)
        self.spans.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                start_s=span._wall0 - self._epoch,
                dur_s=dur,
                cpu_s=cpu,
                mem_peak=mem_peak,
                attrs=span.attrs,
            )
        )


class NullSpan:
    """The shared do-nothing span."""

    __slots__ = ()

    def set(self, **attrs: object) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """The disabled tracer: every call is a cheap no-op.

    ``span()`` hands back one shared :class:`NullSpan` instance (no
    allocation), and ``metrics`` is the shared no-op registry, so code
    instrumented against a tracer pays only an attribute lookup and a
    method call when tracing is off.
    """

    enabled = False
    metrics = NULL_METRICS
    spans: tuple[SpanRecord, ...] = ()
    capture_memory = False
    #: interface parity with :class:`Tracer`; never written to
    rss_peaks: dict[str, int] = {}

    __slots__ = ()

    def span(self, name: str = "", **attrs: object) -> NullSpan:
        return NULL_SPAN

    def close(self) -> None:
        pass

    def stage_names(self) -> list[str]:
        return []

    def find(self, name: str) -> list[SpanRecord]:
        return []


#: Module-level singletons for disabled-mode instrumentation.
NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()

#: The type every ``tracer=`` parameter accepts: a live :class:`Tracer`
#: or the disabled :data:`NULL_TRACER`. Instrumented code must work
#: identically against either.
AnyTracer = Tracer | NullTracer
