"""Exports for one traced run: JSONL events, Prometheus text, and the
Figure-6-style stage report.

Three consumers, three formats:

* :func:`trace_events` / :func:`to_jsonl` — the raw telemetry as a flat
  event stream (one JSON object per line): every span in completion
  order, then a snapshot event per metric. This is what
  ``repro-rank trace --json`` prints and what benchmark runs persist as
  ``benchmarks/output/pipeline_trace.json``.
* :func:`to_prometheus` — a Prometheus-style text exposition of the
  metrics registry (counters as ``_total``, histograms as
  ``_count``/``_sum``/``_min``/``_max``).
* :func:`stage_report` — the human-readable pipeline stage report:
  span tree with wall/CPU time, input/output volumes and drop ratios,
  followed by the Table-1 drop accounting, the geolocation accounting,
  and (for ``repro-rank lint --trace`` / ``watch --trace`` runs) the
  ``lint.*`` / ``monitor.*`` run stats, all rendered from the metric
  counters (so they are, by construction, the instrumented truth).

:func:`validate_events` is the schema check used by the smoke tests.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer

#: Table-1 categories, mirroring repro.core.sanitize.REJECT_CATEGORIES
#: (kept literal here so obs stays dependency-free of core).
_DROP_CATEGORIES = (
    "unstable", "unallocated", "loop", "poisoned",
    "vp_no_location", "covered", "prefix_no_location",
)


# -- event stream -----------------------------------------------------------

def trace_events(tracer: Tracer) -> list[dict]:
    """The run as a flat list of JSON-ready event dicts.

    Spans are emitted in start order (span ids are allocated when a
    span opens), so a parent always precedes its children in the
    stream — the invariant :func:`validate_events` checks.
    """
    events: list[dict] = []
    for record in sorted(tracer.spans, key=lambda r: r.span_id):
        events.append({
            "type": "span",
            "id": record.span_id,
            "parent": record.parent_id,
            "name": record.name,
            "start_s": round(record.start_s, 6),
            "dur_s": round(record.dur_s, 6),
            "cpu_s": round(record.cpu_s, 6),
            "mem_peak": record.mem_peak,
            "attrs": dict(record.attrs),
        })
    for name, payload in tracer.metrics.snapshot().items():
        events.append({"type": payload["kind"], "name": name,
                       **{k: v for k, v in payload.items() if k != "kind"}})
    return events


def to_jsonl(tracer: Tracer) -> str:
    """The event stream as JSON Lines text."""
    return "\n".join(json.dumps(event, sort_keys=True) for event in trace_events(tracer))


def validate_events(events: Iterable[dict]) -> list[str]:
    """Schema-check an event stream; returns problems (empty = valid).

    Rules: every event has a ``type``; spans carry a non-empty ``name``,
    non-negative ``dur_s``/``cpu_s``, a unique ``id``, a ``parent`` that
    is ``null`` or resolves to an already-emitted span, and non-negative
    numeric volume attrs; counters/gauges/histograms carry non-negative
    values.
    """
    problems: list[str] = []
    seen_ids: set[int] = set()
    for index, event in enumerate(events):
        where = f"event {index}"
        kind = event.get("type")
        if kind not in ("span", "counter", "gauge", "histogram"):
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
        if kind == "span":
            span_id = event.get("id")
            if not isinstance(span_id, int):
                problems.append(f"{where}: span id missing")
            elif span_id in seen_ids:
                problems.append(f"{where}: duplicate span id {span_id}")
            else:
                seen_ids.add(span_id)
            parent = event.get("parent")
            if parent is not None and parent not in seen_ids:
                problems.append(
                    f"{where}: parent {parent!r} does not resolve to an "
                    "earlier span"
                )
            for field in ("dur_s", "cpu_s", "start_s"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: bad {field} {value!r}")
            attrs = event.get("attrs", {})
            if not isinstance(attrs, dict):
                problems.append(f"{where}: attrs is not a dict")
            else:
                for key, value in attrs.items():
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ) and value < 0:
                        problems.append(f"{where}: negative volume {key}={value}")
        elif kind == "counter":
            value = event.get("value")
            if not isinstance(value, int) or value < 0:
                problems.append(f"{where}: bad counter value {value!r}")
        elif kind == "histogram":
            count = event.get("count")
            if not isinstance(count, int) or count < 0:
                problems.append(f"{where}: bad histogram count {count!r}")
    return problems


def validate_jsonl(text: str) -> list[str]:
    """Parse JSONL text and schema-check it (parse errors included)."""
    events: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            return [f"line {lineno}: not JSON ({error.msg})"]
    return validate_events(events)


# -- prometheus exposition --------------------------------------------------

#: Prometheus metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
#: anything else in an instrument name collapses to ``_``.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def to_prometheus(metrics: MetricsRegistry) -> str:
    """Prometheus text exposition of one metrics registry."""
    lines: list[str] = []
    for name, value in metrics.counters().items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in metrics.gauges().items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value:g}")
    for name, hist in metrics.histograms().items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {hist.count}")
        lines.append(f"{prom}_sum {hist.total:g}")
        if hist.count:
            lines.append(f"{prom}_min {hist.min:g}")
            lines.append(f"{prom}_max {hist.max:g}")
    return "\n".join(lines)


# -- stage report -----------------------------------------------------------

def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f}s"
    return f"{seconds * 1000.0:6.1f}ms"


def _fmt_volume(value: object) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{int(value):>9}"
    return f"{'-':>9}"


def _span_row(record: SpanRecord, depth: int) -> str:
    label = "  " * depth + record.name
    attrs = record.attrs
    inp = attrs.get("input")
    out = attrs.get("output")
    drop = "-"
    if (
        isinstance(inp, (int, float)) and isinstance(out, (int, float))
        and not isinstance(inp, bool) and inp > 0
    ):
        drop = f"{100.0 * (1.0 - out / inp):.1f}%"
    mem = ""
    if record.mem_peak is not None:
        mem = f"  peak {record.mem_peak / 1e6:.1f}MB"
    return (
        f"{label:<28}{_fmt_duration(record.dur_s)}{_fmt_duration(record.cpu_s)}"
        f"{_fmt_volume(inp)}{_fmt_volume(out)}{drop:>8}{mem}"
    )


def stage_report(tracer: Tracer, title: str = "pipeline stage report") -> str:
    """The Figure-6-style per-stage accounting, rendered for a terminal."""
    lines = [f"== {title} =="]
    lines.append(
        f"{'stage':<28}{'wall':>8}{'cpu':>8}{'in':>9}{'out':>9}{'drop':>8}"
    )
    children: dict[int | None, list[SpanRecord]] = {}
    for record in tracer.spans:
        children.setdefault(record.parent_id, []).append(record)

    def emit(record: SpanRecord, depth: int) -> None:
        lines.append(_span_row(record, depth))
        for child in sorted(
            children.get(record.span_id, ()), key=lambda r: r.start_s
        ):
            emit(child, depth + 1)

    for root in sorted(children.get(None, ()), key=lambda r: r.start_s):
        emit(root, 0)

    counters = tracer.metrics.counters()
    drop_rows = [
        (category, counters.get(f"sanitize.dropped.{category}", 0))
        for category in _DROP_CATEGORIES
    ]
    total = counters.get("sanitize.input", 0)
    if total:
        lines.append("")
        lines.append("-- sanitize drops (Table 1, announcement units) --")
        for category, count in drop_rows:
            lines.append(f"  {category:<20}{count:>10}{100.0 * count / total:>8.2f}%")
        accepted = counters.get("sanitize.accepted", 0)
        lines.append(f"  {'accepted':<20}{accepted:>10}{100.0 * accepted / total:>8.2f}%")
        lines.append(f"  {'total':<20}{total:>10}{100.0:>8.2f}%")

    geo_keys = [key for key in counters if key.startswith("geo.prefixes.")]
    if geo_keys:
        lines.append("")
        lines.append("-- prefix geolocation --")
        for key in geo_keys:
            lines.append(f"  {key:<28}{counters[key]:>10}")

    quarantine_keys = [
        key for key in counters if key.startswith("io.quarantine.")
    ]
    if quarantine_keys:
        lines.append("")
        lines.append("-- io quarantine (lenient-mode diverted lines) --")
        for key in quarantine_keys:
            lines.append(f"  {key:<28}{counters[key]:>10}")

    gauges = tracer.metrics.gauges()
    memory_keys = [key for key in gauges if key.startswith("obs.memory.")]
    if memory_keys:
        lines.append("")
        lines.append("-- memory (process peak RSS) --")
        for key in memory_keys:
            lines.append(f"  {key:<28}{gauges[key] / 1e6:>9.1f}MB")
        for name, peak in sorted(
            tracer.rss_peaks.items(), key=lambda item: -item[1]
        )[:8]:
            lines.append(f"    at {name:<24}{peak / 1e6:>9.1f}MB")
    lint_counters = [key for key in counters if key.startswith("lint.")]
    if lint_counters:
        lines.append("")
        lines.append("-- lint (repro-lint run stats) --")
        for key in lint_counters:
            lines.append(f"  {key:<28}{counters[key]:>10}")
        for key, value in gauges.items():
            if key.startswith("lint."):
                lines.append(f"  {key:<28}{value:>10g}")

    monitor_counters = [key for key in counters if key.startswith("monitor.")]
    if monitor_counters:
        lines.append("")
        lines.append("-- monitor (watch run stats) --")
        for key in monitor_counters:
            lines.append(f"  {key:<28}{counters[key]:>10}")
        for key, value in gauges.items():
            if key.startswith("monitor."):
                lines.append(f"  {key:<28}{value:>10g}")

    serve_counters = [key for key in counters if key.startswith("serve.")]
    if serve_counters:
        lines.append("")
        lines.append("-- serve (daemon run stats) --")
        for key in serve_counters:
            lines.append(f"  {key:<28}{counters[key]:>10}")
        for key, value in gauges.items():
            if key.startswith("serve."):
                lines.append(f"  {key:<28}{value:>10g}")

    histograms = tracer.metrics.histograms()
    if histograms:
        lines.append("")
        lines.append("-- distributions --")
        for name, hist in histograms.items():
            lines.append(
                f"  {name:<24}n={hist.count:<6}mean={hist.mean():<12.1f}"
                f"min={hist.min if hist.count else 0:<10g}"
                f"max={hist.max if hist.count else 0:g}"
            )
    return "\n".join(lines)
