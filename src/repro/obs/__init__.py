"""repro.obs — structured tracing, metrics, and per-stage accounting.

The measurement layer under every pipeline stage: a span tracer
(:mod:`repro.obs.trace`), a counters/gauges/histograms registry
(:mod:`repro.obs.metrics`), and exporters for JSONL traces, Prometheus
text, and the Figure-6-style stage report (:mod:`repro.obs.export`).

Enable it with ``PipelineConfig(trace=True)`` (the collected telemetry
rides on ``PipelineResult.trace``) or drive it from the CLI with
``repro-rank trace``.
"""

from repro.obs.export import (
    stage_report,
    to_jsonl,
    to_prometheus,
    trace_events,
    validate_events,
    validate_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "stage_report",
    "to_jsonl",
    "to_prometheus",
    "trace_events",
    "validate_events",
    "validate_jsonl",
]
