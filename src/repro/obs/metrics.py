"""Named counters, gauges, and histograms for pipeline accounting.

The :class:`MetricsRegistry` is a flat namespace of instruments keyed
by dotted names (``sanitize.dropped.loop``). Instruments are created on
first use and accumulate for the registry's lifetime; a registry
snapshot is fully deterministic for a fixed seed — only span timings
carry wall-clock noise, never metric values.

The documented metric namespace (see README § Observability):

========================  =========  =======================================
name                      kind       meaning
========================  =========  =======================================
propagate.origins         counter    origins swept per plane
propagate.routes          counter    routes kept at VP ASes
propagate.frontier        histogram  BFS frontier size per up-phase level
ribs.vps                  gauge      vantage points feeding the RIB series
ribs.prefixes             gauge      announced prefixes in the series
ribs.paths                gauge      distinct (VP AS, origin) best paths
ribs.unstable_prefixes    gauge      prefixes with churn (missing days)
ribs.overrides            gauge      records overridden by anomaly injection
sanitize.input            counter    announcements entering Table-1 filters
sanitize.accepted         counter    announcements surviving all filters
sanitize.dropped.<cat>    counter    announcements dropped per Table-1 row
geo.prefixes.accepted     counter    prefixes assigned a majority country
geo.prefixes.covered      counter    prefixes covered by more specifics
geo.prefixes.no_consensus counter    prefixes failing the majority threshold
geo.addresses.owned       gauge      owned addresses across surviving prefixes
views.size                histogram  records per constructed view
views.vps                 histogram  distinct VPs per constructed view
ranking.size              histogram  entries per computed ranking
cone.ases                 histogram  ASes with a non-empty cone per run
hegemony.universe         histogram  ASes scored per hegemony run
cti.universe              histogram  ASes scored per CTI run
ahc.origins               histogram  origin ASes contributing per AHC run
========================  =========  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


@dataclass(slots=True)
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass(slots=True)
class Histogram:
    """Aggregate summary of observed values (count/sum/min/max).

    Individual observations are not retained — the summary is enough
    for stage reports and keeps the registry O(#instruments).
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unbound(name, self._gauges, self._histograms)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unbound(name, self._counters, self._histograms)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unbound(name, self._counters, self._gauges)
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    @staticmethod
    def _check_unbound(name: str, *others: dict) -> None:
        if any(name in table for table in others):
            raise ValueError(f"metric {name!r} already bound to another kind")

    # -- export --------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Counter values, sorted by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        """Gauge values, sorted by name."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> dict[str, Histogram]:
        """Histogram instruments, sorted by name."""
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Everything, as plain JSON-ready dicts keyed by metric name."""
        out: dict[str, dict[str, object]] = {}
        for name, value in self.counters().items():
            out[name] = {"kind": "counter", "value": value}
        for name, value in self.gauges().items():
            out[name] = {"kind": "gauge", "value": value}
        for name, hist in self.histograms().items():
            out[name] = {
                "kind": "histogram",
                "count": hist.count,
                "sum": hist.total,
                "min": hist.min if hist.count else None,
                "max": hist.max if hist.count else None,
            }
        return dict(sorted(out.items()))


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def mean(self) -> float:
        return 0.0


class NullMetrics:
    """Registry that hands out shared no-op instruments."""

    __slots__ = ()

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str) -> _NullHistogram:
        return self._histogram

    def counters(self) -> dict[str, int]:
        return {}

    def gauges(self) -> dict[str, float]:
        return {}

    def histograms(self) -> dict[str, Histogram]:
        return {}

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {}


#: Shared instances for disabled-mode instrumentation.
NULL_METRICS = NullMetrics()
NULL_HISTOGRAM = NullMetrics._histogram
NULL_COUNTER = NullMetrics._counter
