"""One-stop country reports.

Stitches a country's full picture — the four country metrics, the
baselines, sovereignty dependencies, market concentration, and the VP
census behind the national view — into a single markdown document, the
artifact a policy analyst would actually read. Exposed on the CLI as
``repro-rank report <CC>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.case_studies import CASE_METRICS, case_study_table
from repro.analysis.concentration import concentration
from repro.analysis.sovereignty import DependencyMatrix, dependency_matrix
from repro.analysis.vp_distribution import vp_census
from repro.core.pipeline import PipelineResult
from repro.core.registry import get_spec, metric_names, paper_metrics

#: Metrics shown in the per-metric leader board, in order: the paper's
#: case-study columns, then the per-country baselines — all derived
#: from the metric registry.
REPORT_METRICS = CASE_METRICS + metric_names(tag="baseline", needs_country=True)


@dataclass(frozen=True)
class CountryReport:
    """A rendered report plus the data behind it."""

    country: str
    markdown: str
    matrix: DependencyMatrix


def country_report(
    result: PipelineResult,
    country: str,
    k: int = 5,
    matrix: DependencyMatrix | None = None,
) -> CountryReport:
    """Build the markdown report for one country."""
    if matrix is None:
        matrix = dependency_matrix(result)
    graph = result.world.graph

    def name(asn: int) -> str:
        node = graph.maybe_node(asn)
        return node.name if node else f"AS{asn}"

    lines: list[str] = [f"# Internet profile: {country}", ""]

    census = [row for row in vp_census(result) if row.country == country]
    if census:
        row = census[0]
        lines += [
            f"*{row.vp_ips} located vantage points in {row.vp_asns} ASes; "
            f"{row.asns} origin ASes announcing {row.prefixes} prefixes "
            f"({row.addresses:,} addresses).*",
            "",
        ]
        national_ok = row.vp_ips >= 7
    else:
        lines += ["*No located in-country vantage points: national views "
                  "(CCN/AHN) are unavailable or unstable.*", ""]
        national_ok = False

    lines += ["## Rankings", "",
              "| metric | # | AS | share |", "|---|---|---|---|"]
    for metric in REPORT_METRICS:
        if get_spec(metric).view_kind == "national" and not national_ok:
            continue
        ranking = result.ranking(metric, country)
        for entry in ranking.top(k):
            lines.append(
                f"| {metric} | {entry.rank} | {name(entry.asn)} (AS{entry.asn}) "
                f"| {entry.share_pct():.1f}% |"
            )
    lines.append("")

    lines += ["## Cross-metric view (top 2 per metric)", ""]
    rows = case_study_table(result, country)
    lines += [
        "| AS | reg | " + " | ".join(CASE_METRICS) + " | CCG |",
        "|---|---|" + "---|" * (len(CASE_METRICS) + 1),
    ]
    for row in rows:
        cells = []
        for metric in CASE_METRICS:
            rank, share = row.cells[metric]
            cells.append(f"{rank or '–'} ({100 * share:.0f}%)")
        lines.append(
            f"| {row.name} (AS{row.asn}) | {row.registry_country} | "
            + " | ".join(cells) + f" | {row.ccg_rank or '–'} |"
        )
    lines.append("")

    lines += ["## Foreign dependence", "",
              f"Self-reliance score: **{matrix.self_reliance(country):.2f}** "
              "(domestic carriers' hegemony relative to the strongest carrier).",
              ""]
    for serving, value in matrix.top_dependencies(country, k=5):
        lines.append(f"- {serving}: max AHI {100 * value:.1f}%")
    lines.append("")

    lines += ["## Market concentration", ""]
    concentration_view = "national" if national_ok else "international"
    for metric in reversed(paper_metrics(concentration_view)):
        report = concentration(result.ranking(metric, country))
        lines.append(
            f"- {metric}: HHI {report.hhi:.0f} ({report.band()}), "
            f"CR1 {100 * report.cr1:.1f}%, CR4 {100 * report.cr4:.1f}%"
        )
    lines.append("")

    return CountryReport(country=country, markdown="\n".join(lines), matrix=matrix)
