"""Market-concentration indices over country rankings.

The paper observes (§5.4) that U.S. shares are lower across all four
metrics, "suggesting a less concentrated U.S. market". This module
makes that observation a first-class measurement: the
Herfindahl–Hirschman Index (HHI) and top-k concentration ratios over a
metric's shares, per country — the quantities regulators actually use
when they discuss telecom market concentration.

For hegemony metrics the shares are path fractions (they need not sum
to one — ASes share paths), so we normalise before computing HHI; for
cone metrics we use each AS's *exclusive* contribution approximated by
the share vector normalised the same way. The resulting numbers are
comparative, not absolute antitrust thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineResult
from repro.core.ranking import Ranking


@dataclass(frozen=True, slots=True)
class ConcentrationReport:
    """Concentration summary of one country ranking."""

    metric: str
    country: str
    #: Herfindahl–Hirschman Index over normalised shares, 0..10000
    hhi: float
    #: share of the top AS (CR1) and top four ASes (CR4), 0..1
    cr1: float
    cr4: float
    contributors: int

    def band(self) -> str:
        """The conventional HHI interpretation band."""
        if self.hhi < 1500:
            return "unconcentrated"
        if self.hhi < 2500:
            return "moderately concentrated"
        return "highly concentrated"


def _normalised_shares(ranking: Ranking, k: int | None = None) -> list[float]:
    entries = ranking.entries if k is None else ranking.top(k)
    shares = [entry.share or 0.0 for entry in entries if (entry.share or 0.0) > 0]
    total = sum(shares)
    if total <= 0.0:
        return []
    return [share / total for share in shares]


def concentration(ranking: Ranking, k: int | None = 20) -> ConcentrationReport:
    """Concentration indices for one ranking (top-k contributors)."""
    shares = _normalised_shares(ranking, k)
    hhi = 10000.0 * sum(share * share for share in shares)
    cr1 = shares[0] if shares else 0.0
    cr4 = sum(shares[:4])
    return ConcentrationReport(
        metric=ranking.metric,
        country=ranking.country or "global",
        hhi=hhi,
        cr1=cr1,
        cr4=cr4,
        contributors=len(shares),
    )


def country_concentrations(
    result: PipelineResult,
    countries: tuple[str, ...],
    metric: str = "AHN",
) -> dict[str, ConcentrationReport]:
    """Concentration per country for one metric."""
    return {
        country: concentration(result.ranking(metric, country))
        for country in countries
    }


def render_concentrations(reports: dict[str, ConcentrationReport]) -> str:
    """A printable concentration comparison."""
    lines = [f"{'country':<8}{'HHI':>8}{'CR1':>7}{'CR4':>7}  band"]
    for country, report in sorted(
        reports.items(), key=lambda kv: -kv[1].hhi
    ):
        lines.append(
            f"{country:<8}{report.hhi:>8.0f}{100 * report.cr1:>6.1f}%"
            f"{100 * report.cr4:>6.1f}%  {report.band()}"
        )
    return "\n".join(lines)
