"""Case-study tables (paper Tables 5–9).

Tables 5–8 show, per country, the union of the top-2 ASes of each of
the four country metrics, annotated with every metric's rank and share
and with the AS's global customer-cone (CCG) rank as a subscript.
Table 9 contrasts the country-specific rankings with what filtering a
global ranking — or IHR's AHC — would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineResult
from repro.core.registry import paper_metrics

#: Column order of the paper's case-study tables (the international
#: pair, then the national pair), derived from the metric registry.
CASE_METRICS = tuple(
    name for kind in ("international", "national") for name in paper_metrics(kind)
)


@dataclass(frozen=True, slots=True)
class CaseStudyRow:
    """One AS's standing across the four country metrics."""

    asn: int
    name: str
    registry_country: str
    #: metric -> (rank, share 0..1); rank may be None when unranked
    cells: dict[str, tuple[int | None, float]]
    ccg_rank: int | None

    def best_rank(self) -> int:
        """The AS's best rank across metrics (sort key for the table)."""
        ranks = [rank for rank, _ in self.cells.values() if rank is not None]
        return min(ranks) if ranks else 10**9


def case_study_table(
    result: PipelineResult,
    country: str,
    metrics: tuple[str, ...] = CASE_METRICS,
    top_per_metric: int = 2,
) -> list[CaseStudyRow]:
    """Tables 5–8: the union of each metric's top ASes, fully annotated."""
    rankings = {metric: result.ranking(metric, country) for metric in metrics}
    ccg = result.ranking("CCG")
    member_asns: list[int] = []
    for metric in metrics:
        for asn in rankings[metric].top_asns(top_per_metric):
            if asn not in member_asns:
                member_asns.append(asn)
    rows = []
    for asn in member_asns:
        cells = {
            metric: (
                rankings[metric].rank_of(asn),
                rankings[metric].share_of(asn) or 0.0,
            )
            for metric in metrics
        }
        node = result.world.graph.maybe_node(asn)
        rows.append(
            CaseStudyRow(
                asn=asn,
                name=node.name if node else f"AS{asn}",
                registry_country=node.registry_country if node else "??",
                cells=cells,
                ccg_rank=ccg.rank_of(asn),
            )
        )
    rows.sort(key=CaseStudyRow.best_rank)
    return rows


def render_case_study(
    rows: list[CaseStudyRow],
    country: str,
    metrics: tuple[str, ...] = CASE_METRICS,
) -> str:
    """Printable Table 5–8 lookalike."""
    header = f"{'ASN':>6} {'name':<24} {'reg':<4}"
    for metric in metrics:
        header += f" {metric:>10}"
    header += f" {'CCG':>5}"
    lines = [f"== Top ASes per metric, {country} ==", header]
    for row in rows:
        line = f"{row.asn:>6} {row.name:<24.24} {row.registry_country:<4}"
        for metric in metrics:
            rank, share = row.cells[metric]
            cell = f"{rank or '-':>3} {100 * share:4.0f}%"
            line += f" {cell:>10}"
        line += f" {row.ccg_rank or '-':>5}"
        lines.append(line)
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One rank position in the Table-9 comparison."""

    rank: int
    cci_asn: int
    cci_name: str
    cci_ccg_rank: int | None
    ahi_asn: int
    ahi_name: str
    ahi_ahg_rank: int | None
    ahi_ahc_rank: int | None
    ahi_ahn_rank: int | None


def global_comparison_table(
    result: PipelineResult, country: str, k: int = 10
) -> list[ComparisonRow]:
    """Table 9: country CCI/AHI tops vs their global/AHC/AHN standings."""
    cci = result.ranking("CCI", country)
    ccg = result.ranking("CCG")
    ahi = result.ranking("AHI", country)
    ahg = result.ranking("AHG")
    ahc = result.ranking("AHC", country)
    ahn = result.ranking("AHN", country)

    def name(asn: int) -> str:
        node = result.world.graph.maybe_node(asn)
        return node.name if node else f"AS{asn}"

    rows = []
    cci_top = cci.top_asns(k)
    ahi_top = ahi.top_asns(k)
    for index in range(min(k, len(cci_top), len(ahi_top))):
        cci_asn = cci_top[index]
        ahi_asn = ahi_top[index]
        rows.append(
            ComparisonRow(
                rank=index + 1,
                cci_asn=cci_asn,
                cci_name=name(cci_asn),
                cci_ccg_rank=ccg.rank_of(cci_asn),
                ahi_asn=ahi_asn,
                ahi_name=name(ahi_asn),
                ahi_ahg_rank=ahg.rank_of(ahi_asn),
                ahi_ahc_rank=ahc.rank_of(ahi_asn),
                ahi_ahn_rank=ahn.rank_of(ahi_asn),
            )
        )
    return rows


def render_global_comparison(rows: list[ComparisonRow], country: str) -> str:
    """Printable Table 9 lookalike."""
    lines = [
        f"== Country vs global rankings, {country} ==",
        f"{'CCI':>4} {'CCG':>4}  {'cone AS':<22} | "
        f"{'AHI':>4} {'AHG':>4} {'AHC':>4} {'AHN':>4}  hegemony AS",
    ]
    for row in rows:
        lines.append(
            f"{row.rank:>4} {row.cci_ccg_rank or '-':>4}  {row.cci_name:<22.22} | "
            f"{row.rank:>4} {row.ahi_ahg_rank or '-':>4} "
            f"{row.ahi_ahc_rank or '-':>4} {row.ahi_ahn_rank or '-':>4}  {row.ahi_name}"
        )
    return "\n".join(lines)
