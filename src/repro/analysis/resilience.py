"""What-if disconnection analysis.

The paper's introduction motivates the metrics with the weaponization
scenario — a state "could weaponize ASes headquartered within their
sovereign borders … to monitor, disrupt, or censor traffic" — and its
§7 notes that public BGP data cannot support resilience assessments
because backup paths are invisible. Our substrate has no such
limitation: it can *remove* ASes and re-propagate, revealing exactly
which countries lose reachability and which merely re-route.

``disconnection_impact`` removes a set of ASes (e.g. every AS
registered in a hostile country) from a world and reports, per
destination country:

* the share of addresses that become **unreachable** from the top tier;
* the share that survives but **re-homes** through different paths.

The strongest validation: removing Russia's carriers strands exactly
the Central-Asian countries Figure 7 shows depending on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.propagation import propagate_all
from repro.topology.model import ASRole
from repro.topology.world import World


@dataclass(frozen=True, slots=True)
class CountryImpact:
    """One destination country's exposure to a disconnection."""

    country: str
    total_addresses: int
    lost_addresses: int
    rerouted_addresses: int

    @property
    def lost_share(self) -> float:
        """Fraction of the country's addresses with no route left."""
        return self.lost_addresses / self.total_addresses if self.total_addresses else 0.0

    @property
    def rerouted_share(self) -> float:
        """Fraction that stays reachable but over different paths."""
        return (
            self.rerouted_addresses / self.total_addresses
            if self.total_addresses else 0.0
        )


@dataclass(frozen=True)
class DisconnectionImpact:
    """Full result of one what-if removal."""

    removed: frozenset[int]
    by_country: dict[str, CountryImpact]

    def stranded_countries(self, threshold: float = 0.5) -> list[str]:
        """Countries losing more than ``threshold`` of their addresses."""
        return sorted(
            code
            for code, impact in self.by_country.items()
            if impact.lost_share > threshold
        )

    def render(self, k: int = 12) -> str:
        """Printable impact table, worst-hit first."""
        lines = [f"== Disconnecting {len(self.removed)} ASes ==",
                 f"{'country':<8}{'lost':>8}{'rerouted':>10}"]
        ordered = sorted(
            self.by_country.values(),
            key=lambda i: (-i.lost_share, -i.rerouted_share, i.country),
        )
        for impact in ordered[:k]:
            lines.append(
                f"{impact.country:<8}{100 * impact.lost_share:>7.1f}%"
                f"{100 * impact.rerouted_share:>9.1f}%"
            )
        return "\n".join(lines)


def ases_registered_in(world: World, country: str) -> frozenset[int]:
    """The removal set for a country-level scenario: every operational
    AS registered there (route servers excluded — they carry nothing)."""
    return frozenset(
        asn
        for asn in world.graph.by_registry_country(country)
        if world.graph.node(asn).role is not ASRole.ROUTE_SERVER
    )


def disconnection_impact(
    world: World,
    removed: frozenset[int] | set[int],
    family: int = 4,
) -> DisconnectionImpact:
    """Remove ASes, re-propagate, and measure per-country impact.

    Reachability is judged from the surviving top-tier clique: an
    origin is *lost* when no surviving clique member holds any route to
    it (if the core cannot reach it, neither can the wider Internet);
    *rerouted* when reachable but over a different path at some clique
    member.
    """
    removed = frozenset(removed)
    baseline_graph = world.graph
    clique = frozenset(baseline_graph.clique()) - removed
    if not clique:
        raise ValueError("removal set destroys the entire top tier")

    degraded_graph = baseline_graph.copy()
    for asn in removed:
        if asn in degraded_graph:
            degraded_graph.remove_as(asn)

    origins = [
        asn for asn in baseline_graph.asns()
        if asn not in removed and any(
            record.prefix.version == family
            for record in baseline_graph.node(asn).prefixes
        )
    ]
    before = propagate_all(baseline_graph, origins=origins, keep=clique)
    after = propagate_all(degraded_graph, origins=origins, keep=clique)

    per_country: dict[str, list[int]] = {}
    for origin in origins:
        addresses: dict[str, int] = {}
        for record in baseline_graph.node(origin).prefixes:
            if record.prefix.version != family:
                continue
            addresses[record.country] = (
                addresses.get(record.country, 0) + record.prefix.num_addresses()
            )
        old_routes = before.routes.get(origin, {})
        new_routes = after.routes.get(origin, {})
        lost = len(new_routes) == 0
        rerouted = not lost and any(
            new_routes.get(member) is not None
            and old_routes.get(member) is not None
            and new_routes[member].path != old_routes[member].path
            for member in clique
        )
        for country, count in addresses.items():
            bucket = per_country.setdefault(country, [0, 0, 0])
            bucket[0] += count
            if lost:
                bucket[1] += count
            elif rerouted:
                bucket[2] += count

    return DisconnectionImpact(
        removed=removed,
        by_country={
            country: CountryImpact(country, total, lost, rerouted)
            for country, (total, lost, rerouted) in sorted(per_country.items())
        },
    )
