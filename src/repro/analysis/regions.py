"""Regional dominance analyses (paper Table 12 and Figure 7).

Table 12 asks, per *serving* country: in how many destination countries
does some AS registered there hold an international hegemony (AHI)
above 0.1, broken down by the destination's continent — revealing that
U.S. carriers serve most of the world while Telstra serves Oceania,
Orange/Liquid/MTN serve Africa, and Russian carriers serve Central
Asia. Figure 7 is the Russian special case over former-Soviet states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import PipelineResult
from repro.topology.countries import CONTINENTS


@dataclass
class DominanceRow:
    """Table-12 row: one serving country's reach."""

    serving_country: str
    #: continent -> number of destination countries served (AHI > thr)
    by_continent: dict[str, int] = field(default_factory=dict)
    #: destination country codes served
    served: set[str] = field(default_factory=set)
    #: (asn, countries served) for the AS serving the most countries
    top_as: tuple[int, int] | None = None

    def total(self) -> int:
        """Destination countries served on any continent."""
        return len(self.served)


def destination_countries(result: PipelineResult, min_records: int = 5) -> list[str]:
    """Countries with enough observed inbound paths to evaluate."""
    counts: dict[str, int] = {}
    for record in result.paths.records:
        counts[record.prefix_country] = counts.get(record.prefix_country, 0) + 1
    return sorted(code for code, n in counts.items() if n >= min_records)


def continental_dominance(
    result: PipelineResult,
    threshold: float = 0.1,
    destinations: list[str] | None = None,
) -> list[DominanceRow]:
    """Table 12: serving countries ranked by how many destinations rely
    on their ASes for international connectivity."""
    if destinations is None:
        destinations = destination_countries(result)
    graph = result.world.graph
    countries = result.world.countries
    rows: dict[str, DominanceRow] = {}
    per_as_served: dict[int, set[str]] = {}
    for destination in destinations:
        ahi = result.ranking("AHI", destination)
        continent = countries.get(destination).continent
        seen_serving: set[str] = set()
        for entry in ahi.entries:
            if entry.value <= threshold:
                break  # entries sorted descending
            node = graph.maybe_node(entry.asn)
            if node is None:
                continue
            serving = node.registry_country
            if serving == destination:
                # Table 12 counts *international* reliance: skip the
                # destination's own ASes except for the self column the
                # paper also includes — we include self-service too.
                pass
            per_as_served.setdefault(entry.asn, set()).add(destination)
            if serving in seen_serving:
                continue
            seen_serving.add(serving)
            row = rows.setdefault(serving, DominanceRow(serving))
            row.served.add(destination)
            row.by_continent[continent] = row.by_continent.get(continent, 0) + 1
    # Top AS per serving country = the one exceeding the threshold in
    # the most destinations.
    for serving, row in rows.items():
        best: tuple[int, int] | None = None
        for asn, served in per_as_served.items():
            node = graph.maybe_node(asn)
            if node is None or node.registry_country != serving:
                continue
            score = (len(served), -asn)
            if best is None or score > (best[1], -best[0]):
                best = (asn, len(served))
        row.top_as = best
    ordered = sorted(rows.values(), key=lambda r: (-r.total(), r.serving_country))
    return ordered


def render_dominance_table(
    rows: list[DominanceRow],
    result: PipelineResult,
    k: int = 12,
) -> str:
    """Printable Table 12 lookalike."""
    short = {"North America": "NoAm", "South America": "SoAm", "Europe": "Eu",
             "Africa": "Af", "Asia": "As", "Oceania": "Oc"}
    header = f"{'serving':<8}"
    for continent in CONTINENTS:
        header += f"{short[continent]:>6}"
    header += f"{'total':>7}  top AS"
    lines = ["== Continental dominance (AHI > 0.1) ==", header]
    for row in rows[:k]:
        line = f"{row.serving_country:<8}"
        for continent in CONTINENTS:
            line += f"{row.by_continent.get(continent, 0):>6}"
        line += f"{row.total():>7}"
        if row.top_as:
            asn, count = row.top_as
            line += f"  {asn} {result.as_name(asn)} ({count})"
        lines.append(line)
    return "\n".join(lines)


def country_hegemony_over(
    result: PipelineResult,
    serving_country: str = "RU",
    destinations: list[str] | None = None,
) -> dict[str, float]:
    """Figure 7: per destination, the highest AHI held by any AS
    registered in ``serving_country``."""
    if destinations is None:
        destinations = destination_countries(result)
    graph = result.world.graph
    out: dict[str, float] = {}
    for destination in destinations:
        ahi = result.ranking("AHI", destination)
        best = 0.0
        for entry in ahi.entries:
            node = graph.maybe_node(entry.asn)
            if node is not None and node.registry_country == serving_country:
                best = max(best, entry.value)
        out[destination] = best
    return dict(sorted(out.items()))
