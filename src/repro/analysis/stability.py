"""Ranking stability under VP downsampling (paper §4, Figures 4–5).

The paper asks: if we had observed the world through fewer vantage
points, would the top-ranked ASes (TRA) have come out the same? For
each sample size it draws random VP subsets, recomputes the metric on
the restricted view, and scores the sample's top-10 against the full
ranking with NDCG. The number of VPs needed to clear an NDCG threshold
(0.8 / 0.9 in the paper) tells a country how much collector deployment
buys ranking fidelity.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cone import cone_ranking
from repro.core.hegemony import hegemony_ranking
from repro.core.ndcg import ndcg
from repro.core.pipeline import PipelineResult
from repro.core.ranking import Ranking
from repro.core.registry import maybe_spec
from repro.core.views import View

if TYPE_CHECKING:  # resume support is imported lazily at runtime
    from repro.resilience.checkpoint import Checkpoint


@dataclass(frozen=True, slots=True)
class StabilityPoint:
    """NDCG statistics for one sample size."""

    sample_size: int
    mean_ndcg: float
    std_ndcg: float
    trials: int


@dataclass(frozen=True, slots=True)
class StabilityCurve:
    """A full downsampling sweep for one metric and view."""

    metric: str
    country: str
    total_vps: int
    points: tuple[StabilityPoint, ...]

    def min_vps_for(self, threshold: float) -> int | None:
        """Smallest sample size whose mean NDCG meets the threshold
        (and stays there for every larger sampled size)."""
        qualified: int | None = None
        for point in sorted(self.points, key=lambda p: p.sample_size):
            if point.mean_ndcg >= threshold:
                if qualified is None:
                    qualified = point.sample_size
            else:
                qualified = None
        return qualified

    def as_rows(self) -> list[tuple[int, float, float]]:
        """(size, mean NDCG, std) rows, ascending by size."""
        return [
            (p.sample_size, p.mean_ndcg, p.std_ndcg)
            for p in sorted(self.points, key=lambda q: q.sample_size)
        ]


def metric_ranking(
    metric: str, view: View, oracle, trim: float = 0.1
) -> Ranking:
    """One CC*/AH* ranking over an arbitrary (possibly downsampled)
    view — the per-trial work unit, also run inside fan-out workers.

    Dispatch comes from the metric registry: cone-family specs rank by
    customer cone, hegemony-family specs by AS hegemony (honouring a
    variant's ``weighting``); other families (AHC, CTI) are not
    view-restrictable per trial and are rejected.
    """
    spec = maybe_spec(metric)
    if spec is None or spec.family not in ("cone", "hegemony"):
        raise ValueError(
            f"stability analysis supports CC*/AH* metrics, not {metric!r}"
        )
    if spec.family == "cone":
        return cone_ranking(view, oracle, spec.name)
    return hegemony_ranking(
        view, spec.name, trim, weighting=spec.weighting or "addresses"
    )


def _metric_ranking(result: PipelineResult, metric: str, view: View) -> Ranking:
    return metric_ranking(metric, view, result.oracle, result.config.trim)


def stability_curve(
    result: PipelineResult,
    metric: str,
    view: View,
    sizes: list[int] | None = None,
    trials: int = 10,
    seed: int = 0,
    k: int = 10,
    workers: int | None = None,
    checkpoint: "Checkpoint | None" = None,
) -> StabilityCurve:
    """Downsample a view's VPs and score each sample against the full
    ranking (the machinery behind Figures 4 and 5).

    Trial views are :class:`repro.perf.ViewSlicer` index slices — the
    view's records are bucketed by VP once, then each trial merges the
    sampled VPs' buckets instead of re-filtering the whole view.

    ``workers`` (default: the pipeline config's ``workers``) fans the
    NDCG trials out across a process pool. Every VP sample is drawn
    up front from a single serial RNG stream, so the curve is identical
    for any worker count; ``workers=1`` computes the trials inline.
    The config's retry policy and fault plan apply to the fan-out.

    ``checkpoint`` persists each trial's NDCG score as it completes;
    a resumed run recomputes only the missing trials and yields the
    identical curve (scores are serialized value-exactly).
    """
    from repro.perf.index import ViewSlicer
    from repro.perf.parallel import stability_trials

    if trials < 1:
        raise ValueError("need at least one trial per size")
    if workers is None:
        workers = result.config.workers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    slicer = ViewSlicer(view)
    vps = [vp.ip for vp in view.vps()]
    total = len(vps)
    if sizes is None:
        sizes = sorted({s for s in _default_sizes(total)})
    full = _metric_ranking(result, metric, view)
    rng = random.Random(seed)
    valid_sizes = [size for size in sizes if 1 <= size <= total]
    samples: list[list[str]] = [
        rng.sample(vps, size) for size in valid_sizes for _ in range(trials)
    ]
    done: dict[int, float] = {}
    if checkpoint is not None:
        for index in range(len(samples)):
            banked = checkpoint.get(f"trial:{index}")
            if isinstance(banked, float):
                done[index] = banked
    todo = [index for index in range(len(samples)) if index not in done]
    todo_samples = [samples[index] for index in todo]
    if workers > 1 and todo_samples:
        fresh = stability_trials(
            metric, view, result.oracle, result.config.trim,
            full, k, todo_samples, workers,
            tracer=result._tracer, policy=result.config.retry,
            faults=result.config.faults, pool=result._pool,
        )
    else:
        fresh = [
            ndcg(full, _metric_ranking(result, metric, slicer.restrict(s)), k)
            for s in todo_samples
        ]
    for index, score in zip(todo, fresh):
        done[index] = score
        if checkpoint is not None:
            checkpoint.put(f"trial:{index}", score)
    scores = [done[index] for index in range(len(samples))]
    points: list[StabilityPoint] = []
    for index, size in enumerate(valid_sizes):
        batch = scores[index * trials:(index + 1) * trials]
        mean = sum(batch) / len(batch)
        variance = sum((s - mean) ** 2 for s in batch) / len(batch)
        points.append(StabilityPoint(size, mean, math.sqrt(variance), trials))
    return StabilityCurve(
        metric=metric,
        country=view.country or "global",
        total_vps=total,
        points=tuple(points),
    )


def _default_sizes(total: int) -> list[int]:
    """A sensible sweep grid: dense at the small end, sparse later."""
    sizes = [s for s in (1, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 25, 32, 40,
                         50, 65, 80, 100, 130, 160, 200) if s < total]
    sizes.append(total)
    return sizes


def national_stability(
    result: PipelineResult,
    country: str,
    metric: str = "AHN",
    sizes: list[int] | None = None,
    trials: int = 10,
    seed: int = 0,
    workers: int | None = None,
) -> StabilityCurve:
    """Figure 4: stability of a country's national ranking (AHN/CCN)."""
    view = result.view("national", country)
    return stability_curve(result, metric, view, sizes, trials, seed, workers=workers)


def international_stability(
    result: PipelineResult,
    country: str,
    metric: str = "AHI",
    sizes: list[int] | None = None,
    trials: int = 10,
    seed: int = 0,
    workers: int | None = None,
) -> StabilityCurve:
    """Figure 5: stability of a country's international ranking (AHI/CCI)."""
    view = result.view("international", country)
    return stability_curve(result, metric, view, sizes, trials, seed, workers=workers)
