"""Rank agreement between metrics.

The paper's §3.3 argues the four metrics "capture different properties"
and therefore rank a country's ASes differently. This module turns that
claim into numbers: Kendall's τ and Spearman's ρ over the ASes two
rankings share, rank-biased overlap (RBO) for top-weighted agreement,
and a full metric-by-metric correlation matrix per country.

Expected structure (asserted in tests/benchmarks): CC metrics correlate
strongly with each other, AH metrics with each other, and the
cross-family correlations (cone vs hegemony) are visibly weaker — the
quantitative form of "complementary properties".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.pipeline import PipelineResult
from repro.core.ranking import Ranking
from repro.core.registry import paper_metrics


@dataclass(frozen=True, slots=True)
class RankAgreement:
    """Agreement of two rankings over their shared ASes."""

    left: str
    right: str
    shared: int
    kendall_tau: float
    spearman_rho: float
    rbo: float


def _shared_ranks(a: Ranking, b: Ranking, k: int | None) -> list[tuple[int, int]]:
    asns = [entry.asn for entry in (a.entries if k is None else a.top(k))]
    pairs = []
    for asn in asns:
        rank_b = b.rank_of(asn)
        if rank_b is not None:
            pairs.append((a.rank_of(asn), rank_b))
    return pairs


def kendall_tau(pairs: list[tuple[int, int]]) -> float:
    """Kendall's τ-a over (rank_left, rank_right) pairs."""
    n = len(pairs)
    if n < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            left = pairs[i][0] - pairs[j][0]
            right = pairs[i][1] - pairs[j][1]
            product = left * right
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = n * (n - 1) // 2
    return (concordant - discordant) / total


def spearman_rho(pairs: list[tuple[int, int]]) -> float:
    """Spearman's ρ over (rank_left, rank_right) pairs (no tie handling
    needed: ranks within one ranking are distinct)."""
    n = len(pairs)
    if n < 2:
        return 1.0
    mean_l = sum(p[0] for p in pairs) / n
    mean_r = sum(p[1] for p in pairs) / n
    cov = sum((l - mean_l) * (r - mean_r) for l, r in pairs)
    var_l = sum((l - mean_l) ** 2 for l, _ in pairs)
    var_r = sum((r - mean_r) ** 2 for _, r in pairs)
    if var_l == 0 or var_r == 0:
        return 1.0
    return cov / math.sqrt(var_l * var_r)


def rank_biased_overlap(a: Ranking, b: Ranking, p: float = 0.9, depth: int = 50) -> float:
    """Rank-biased overlap (Webber et al. 2010), truncated at ``depth``.

    Top-weighted: agreement at rank 1 matters more than at rank 50.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p out of range: {p}")
    list_a = a.top_asns(depth)
    list_b = b.top_asns(depth)
    if not list_a or not list_b:
        return 0.0
    seen_a: set[int] = set()
    seen_b: set[int] = set()
    score = 0.0
    weight_sum = 0.0
    overlap = 0
    for d in range(1, min(depth, max(len(list_a), len(list_b))) + 1):
        if d <= len(list_a):
            seen_a.add(list_a[d - 1])
        if d <= len(list_b):
            seen_b.add(list_b[d - 1])
        overlap = len(seen_a & seen_b)
        weight = p ** (d - 1)
        score += weight * overlap / d
        weight_sum += weight
    return score / weight_sum if weight_sum else 0.0


def agreement(
    a: Ranking, b: Ranking, k: int | None = 20
) -> RankAgreement:
    """Full agreement summary between two rankings."""
    pairs = _shared_ranks(a, b, k)
    return RankAgreement(
        left=a.metric,
        right=b.metric,
        shared=len(pairs),
        kendall_tau=kendall_tau(pairs),
        spearman_rho=spearman_rho(pairs),
        rbo=rank_biased_overlap(a, b),
    )


def metric_matrix(
    result: PipelineResult,
    country: str,
    metrics: tuple[str, ...] | None = None,
    k: int = 20,
) -> dict[tuple[str, str], RankAgreement]:
    """Pairwise agreement between a country's metric rankings
    (default: the registry's four paper metrics)."""
    if metrics is None:
        metrics = paper_metrics()
    rankings = {metric: result.ranking(metric, country) for metric in metrics}
    out: dict[tuple[str, str], RankAgreement] = {}
    for i, left in enumerate(metrics):
        for right in metrics[i + 1:]:
            out[(left, right)] = agreement(rankings[left], rankings[right], k)
    return out


def render_matrix(matrix: dict[tuple[str, str], RankAgreement]) -> str:
    """A printable pairwise-agreement table."""
    lines = [f"{'pair':<12}{'shared':>7}{'tau':>8}{'rho':>8}{'RBO':>8}"]
    for (left, right), result in sorted(matrix.items()):
        short_l = left.split(":")[0]
        short_r = right.split(":")[0]
        lines.append(
            f"{short_l}~{short_r:<8}{result.shared:>7}"
            f"{result.kendall_tau:>8.2f}{result.spearman_rho:>8.2f}"
            f"{result.rbo:>8.2f}"
        )
    return "\n".join(lines)
