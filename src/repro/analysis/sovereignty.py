"""Country-on-country dependency: the paper's motivating sovereignty
question ("how dependent is Taiwan on Chinese ISPs?", §1).

For destination country *D* and serving country *S*, the dependency is
the largest international hegemony (AHI) any AS registered in *S*
holds over *D* — the likelihood that paths into *D* cross an AS that
*S* could statutorily control. ``dependency_matrix`` computes the full
matrix; helpers extract a country's top foreign dependencies and the
self-reliance score the Taiwan case study (§6.2) highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.regions import destination_countries
from repro.core.pipeline import PipelineResult


@dataclass(frozen=True)
class DependencyMatrix:
    """AHI-based inter-country dependency."""

    #: destination -> serving country -> max AHI of serving ASes
    cells: dict[str, dict[str, float]]

    def dependency(self, destination: str, serving: str) -> float:
        """How much ``destination`` depends on ``serving``'s ASes."""
        return self.cells.get(destination, {}).get(serving, 0.0)

    def top_dependencies(
        self, destination: str, k: int = 5, include_self: bool = False
    ) -> list[tuple[str, float]]:
        """The serving countries ``destination`` depends on most."""
        row = self.cells.get(destination, {})
        items = [
            (serving, value)
            for serving, value in row.items()
            if include_self or serving != destination
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items[:k]

    def self_reliance(self, destination: str) -> float:
        """Domestic share of the top of the destination's AHI mass:
        self-dependency divided by the maximum dependency. 1.0 means no
        foreign AS matches the domestic carriers' hegemony."""
        row = self.cells.get(destination, {})
        if not row:
            return 0.0
        peak = max(row.values())
        if peak <= 0.0:
            return 0.0
        return row.get(destination, 0.0) / peak

    def dependents_of(self, serving: str, threshold: float = 0.1) -> list[str]:
        """Destinations relying on ``serving`` above the threshold."""
        return sorted(
            destination
            for destination, row in self.cells.items()
            if destination != serving and row.get(serving, 0.0) > threshold
        )


def dependency_matrix(
    result: PipelineResult,
    destinations: list[str] | None = None,
) -> DependencyMatrix:
    """Compute the full AHI dependency matrix for a pipeline run."""
    if destinations is None:
        destinations = destination_countries(result)
    graph = result.world.graph
    cells: dict[str, dict[str, float]] = {}
    for destination in destinations:
        ahi = result.ranking("AHI", destination)
        row: dict[str, float] = {}
        for entry in ahi.entries:
            node = graph.maybe_node(entry.asn)
            if node is None:
                continue
            serving = node.registry_country
            if entry.value > row.get(serving, 0.0):
                row[serving] = entry.value
        cells[destination] = row
    return DependencyMatrix(cells)


def render_dependencies(
    matrix: DependencyMatrix, destination: str, k: int = 6
) -> str:
    """A printable top-dependency list for one country."""
    lines = [
        f"== {destination}: dependence on foreign carriers (max AHI) ==",
        f"   self-reliance score: {matrix.self_reliance(destination):.2f}",
    ]
    for serving, value in matrix.top_dependencies(destination, k):
        lines.append(f"   {serving}: {100 * value:5.1f}%")
    return "\n".join(lines)
