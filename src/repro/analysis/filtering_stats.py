"""Geolocation filtering statistics (paper Tables 13–14, Figures 8–9).

Appendix B quantifies how much the 50 %-majority threshold costs each
country (almost nothing for the case studies, up to ~18 % of addresses
for the worst-split countries), how that changes as the threshold
moves (Figure 8), and what the filtered prefixes look like (Figure 9:
85 % dropped as covered-by-more-specifics, 15 % for lack of consensus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import GeolocationStats, PrefixGeolocation, geolocate_prefixes
from repro.net.prefix import Prefix


def filtering_table(
    geolocation: PrefixGeolocation,
    case_studies: tuple[str, ...] = ("RU", "TW", "UA", "US", "AU", "JP"),
    worst: int = 4,
    by_addresses: bool = False,
) -> list[GeolocationStats]:
    """Tables 13–14: the case-study countries plus the worst-filtered.

    ``by_addresses`` selects Table 14's ordering (address percentage)
    instead of Table 13's (prefix percentage).
    """
    stats = geolocation.stats_by_country()
    rows: list[GeolocationStats] = [
        stats[code] for code in case_studies if code in stats
    ]

    def key(stat: GeolocationStats) -> float:
        return (
            stat.pct_addresses_filtered if by_addresses
            else stat.pct_prefixes_filtered
        )

    remaining = sorted(
        (s for code, s in stats.items() if code not in case_studies),
        key=key,
        reverse=True,
    )
    rows.extend(remaining[:worst])
    return rows


def render_filtering_table(rows: list[GeolocationStats], by_addresses: bool) -> str:
    """Printable Table 13/14 lookalike."""
    what = "addresses" if by_addresses else "prefixes"
    lines = [f"== % of each country's {what} filtered by the majority threshold ==",
             f"{'country':<8}{'filtered':>10}{'total':>10}{'pct':>8}"]
    for stat in rows:
        if by_addresses:
            filtered, total, pct = (
                stat.filtered_addresses, stat.total_addresses,
                stat.pct_addresses_filtered,
            )
        else:
            filtered, total, pct = (
                stat.filtered_prefixes, stat.total_prefixes,
                stat.pct_prefixes_filtered,
            )
        lines.append(f"{stat.country:<8}{filtered:>10}{total:>10}{pct:>7.1f}%")
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ThresholdPoint:
    """Figure-8 data for one threshold value."""

    threshold: float
    #: country -> fraction of its prefixes that geolocated successfully
    assigned_fraction: dict[str, float]

    def countries_in_band(self, low: float, high: float) -> int:
        """How many countries have an assigned fraction in (low, high]."""
        return sum(
            1 for value in self.assigned_fraction.values() if low < value <= high
        )


def threshold_sweep(
    prefixes: list[Prefix],
    database: GeoDatabase,
    thresholds: tuple[float, ...] = (0.05, 0.15, 0.25, 0.35, 0.45, 0.5,
                                     0.55, 0.65, 0.75, 0.85, 0.95),
) -> list[ThresholdPoint]:
    """Figure 8: per-country assignment success across thresholds."""
    points = []
    for threshold in thresholds:
        outcome = geolocate_prefixes(prefixes, database, threshold)
        stats = outcome.stats_by_country()
        fractions = {
            code: 1.0 - stat.pct_prefixes_filtered / 100.0
            for code, stat in stats.items()
        }
        points.append(ThresholdPoint(threshold, fractions))
    return points


def filtered_length_distribution(
    geolocation: PrefixGeolocation,
) -> dict[int, dict[str, int]]:
    """Figure 9: prefix-length histogram of filtered prefixes, split by
    reason (``covered`` vs ``no_consensus``)."""
    histogram: dict[int, dict[str, int]] = {}
    for prefix in geolocation.covered:
        bucket = histogram.setdefault(prefix.length, {"covered": 0, "no_consensus": 0})
        bucket["covered"] += 1
    for prefix in geolocation.no_consensus:
        bucket = histogram.setdefault(prefix.length, {"covered": 0, "no_consensus": 0})
        bucket["no_consensus"] += 1
    return dict(sorted(histogram.items()))
