"""Paper-evaluation analyses: stability, case studies, temporal and
regional views, filtering statistics, VP distribution."""

from repro.analysis.case_studies import (
    CaseStudyRow,
    case_study_table,
    global_comparison_table,
    render_case_study,
    render_global_comparison,
)
from repro.analysis.filtering_stats import (
    filtered_length_distribution,
    filtering_table,
    threshold_sweep,
)
from repro.analysis.regions import (
    continental_dominance,
    country_hegemony_over,
    render_dominance_table,
)
from repro.analysis.stability import (
    StabilityCurve,
    StabilityPoint,
    international_stability,
    national_stability,
)
from repro.analysis.concentration import (
    ConcentrationReport,
    concentration,
    country_concentrations,
    render_concentrations,
)
from repro.analysis.rank_correlation import (
    RankAgreement,
    agreement,
    metric_matrix,
    rank_biased_overlap,
    render_matrix,
)
from repro.analysis.reports import CountryReport, country_report
from repro.analysis.resilience import (
    CountryImpact,
    DisconnectionImpact,
    ases_registered_in,
    disconnection_impact,
)
from repro.analysis.sovereignty import (
    DependencyMatrix,
    dependency_matrix,
    render_dependencies,
)
from repro.analysis.temporal import TemporalComparison, compare_snapshots
from repro.analysis.vp_distribution import (
    CountryVPStats,
    top_vp_countries,
    vp_census,
    vp_concentration,
)

__all__ = [
    "CaseStudyRow",
    "ConcentrationReport",
    "CountryImpact",
    "CountryReport",
    "RankAgreement",
    "DependencyMatrix",
    "DisconnectionImpact",
    "CountryVPStats",
    "StabilityCurve",
    "StabilityPoint",
    "TemporalComparison",
    "agreement",
    "ases_registered_in",
    "case_study_table",
    "compare_snapshots",
    "continental_dominance",
    "concentration",
    "country_concentrations",
    "country_hegemony_over",
    "country_report",
    "dependency_matrix",
    "disconnection_impact",
    "filtered_length_distribution",
    "filtering_table",
    "global_comparison_table",
    "international_stability",
    "metric_matrix",
    "national_stability",
    "rank_biased_overlap",
    "render_case_study",
    "render_concentrations",
    "render_matrix",
    "render_dependencies",
    "render_dominance_table",
    "render_global_comparison",
    "threshold_sweep",
    "top_vp_countries",
    "vp_census",
    "vp_concentration",
]
