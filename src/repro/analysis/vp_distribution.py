"""Vantage-point census and concentration (paper Tables 3–4, Figure 10).

Table 3/4 count located in-country VPs (the national views are only as
good as these); Figure 10 checks whether VPs pile up inside a few ASes,
which would bias per-VP metrics — the paper found 81 % of VP ASes host
a single VP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineResult


@dataclass(frozen=True, slots=True)
class CountryVPStats:
    """One Table-4 row."""

    country: str
    vp_ips: int
    vp_asns: int
    asns: int
    prefixes: int
    addresses: int


def vp_census(result: PipelineResult, min_vps: int = 1) -> list[CountryVPStats]:
    """Table 4: per-country VP counts plus destination-side footprint.

    ``asns``/``prefixes``/``addresses`` count the ASes originating
    accepted prefixes geolocated to the country, those prefixes, and
    their owned addresses. Sorted by VP IPs descending.
    """
    vp_ips: dict[str, set[str]] = {}
    vp_asns: dict[str, set[int]] = {}
    for vp in result.vp_geo.located():
        country = result.vp_geo.country(vp)
        assert country is not None
        vp_ips.setdefault(country, set()).add(vp.ip)
        vp_asns.setdefault(country, set()).add(vp.asn)

    origins: dict[str, set[int]] = {}
    prefixes: dict[str, set] = {}
    for record in result.paths.records:
        origins.setdefault(record.prefix_country, set()).add(record.origin)
        prefixes.setdefault(record.prefix_country, set()).add(record.prefix)
    addresses = result.country_addresses()

    rows = []
    for country, ips in vp_ips.items():
        if len(ips) < min_vps:
            continue
        rows.append(
            CountryVPStats(
                country=country,
                vp_ips=len(ips),
                vp_asns=len(vp_asns.get(country, ())),
                asns=len(origins.get(country, ())),
                prefixes=len(prefixes.get(country, ())),
                addresses=addresses.get(country, 0),
            )
        )
    rows.sort(key=lambda row: (-row.vp_ips, row.country))
    return rows


def top_vp_countries(result: PipelineResult, k: int = 5) -> list[CountryVPStats]:
    """Table 3: the countries with the most located in-country VPs."""
    return vp_census(result)[:k]


def render_census(rows: list[CountryVPStats]) -> str:
    """Printable Table 3/4 lookalike."""
    lines = ["== In-country vantage points ==",
             f"{'country':<8}{'VP IPs':>8}{'VP ASNs':>9}{'ASNs':>7}"
             f"{'prefixes':>10}{'addresses':>12}"]
    for row in rows:
        lines.append(
            f"{row.country:<8}{row.vp_ips:>8}{row.vp_asns:>9}{row.asns:>7}"
            f"{row.prefixes:>10}{row.addresses:>12}"
        )
    return "\n".join(lines)


def vp_concentration(result: PipelineResult) -> dict[str, dict[int, int]]:
    """Figure 10: per country, ``VPs-per-AS -> number of ASes``.

    The ``"*"`` key aggregates across all countries. A healthy
    distribution has almost all mass at 1 VP per AS.
    """
    per_country_as: dict[str, dict[int, int]] = {}
    for vp in result.vp_geo.located():
        country = result.vp_geo.country(vp)
        assert country is not None
        bucket = per_country_as.setdefault(country, {})
        bucket[vp.asn] = bucket.get(vp.asn, 0) + 1
    histogram: dict[str, dict[int, int]] = {"*": {}}
    for country, by_as in sorted(per_country_as.items()):
        country_hist: dict[int, int] = {}
        for count in by_as.values():
            country_hist[count] = country_hist.get(count, 0) + 1
            histogram["*"][count] = histogram["*"].get(count, 0) + 1
        histogram[country] = dict(sorted(country_hist.items()))
    histogram["*"] = dict(sorted(histogram["*"].items()))
    return histogram


def single_vp_share(result: PipelineResult) -> float:
    """Fraction of VP ASes hosting exactly one VP (paper: 81 %)."""
    histogram = vp_concentration(result)["*"]
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    return histogram.get(1, 0) / total
