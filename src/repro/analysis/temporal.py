"""Two-snapshot rank comparisons (paper Tables 10–11, §6.1–6.2).

Compares a country's ranking between two pipeline runs (different world
snapshots), reporting the later top-k with rank deltas relative to the
earlier snapshot — the layout of the Russia and Taiwan tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineResult


@dataclass(frozen=True, slots=True)
class TemporalRow:
    """One rank slot in a before/after comparison."""

    rank: int
    before_asn: int | None
    before_share: float
    after_asn: int | None
    after_share: float
    #: after AS's rank change (before_rank - after_rank); None if new
    rank_delta: int | None
    #: after AS's share change vs the earlier snapshot
    share_delta: float


@dataclass(frozen=True, slots=True)
class TemporalComparison:
    """A Table-10/11 style comparison for one metric and country."""

    metric: str
    country: str
    before_label: str
    after_label: str
    rows: tuple[TemporalRow, ...]

    def entered(self) -> list[int]:
        """ASes in the later top-k that were not in the earlier one."""
        before = {row.before_asn for row in self.rows}
        return [
            row.after_asn
            for row in self.rows
            if row.after_asn is not None and row.after_asn not in before
        ]

    def departed(self) -> list[int]:
        """ASes that dropped out of the top-k."""
        after = {row.after_asn for row in self.rows}
        return [
            row.before_asn
            for row in self.rows
            if row.before_asn is not None and row.before_asn not in after
        ]

    def render(self, name_of=None) -> str:
        """Printable before/after table."""
        def name(asn):
            if asn is None:
                return "-"
            return name_of(asn) if name_of else f"AS{asn}"

        lines = [
            f"== {self.metric} {self.country}: "
            f"{self.before_label} vs {self.after_label} ==",
            f"{'rk':>3} {self.before_label:<24} {'share':>6}  "
            f"{self.after_label:<24} {'Δrk':>4} {'Δshare':>7}",
        ]
        for row in self.rows:
            delta = f"{row.rank_delta:+d}" if row.rank_delta is not None else "new"
            lines.append(
                f"{row.rank:>3} {name(row.before_asn):<24.24} "
                f"{100 * row.before_share:5.1f}%  "
                f"{name(row.after_asn):<24.24} {delta:>4} "
                f"{100 * row.share_delta:+6.1f}%"
            )
        return "\n".join(lines)


def compare_snapshots(
    before: PipelineResult,
    after: PipelineResult,
    country: str,
    metric: str,
    k: int = 10,
    before_label: str | None = None,
    after_label: str | None = None,
) -> TemporalComparison:
    """Build a Table-10/11 comparison between two pipeline runs."""
    ranking_before = before.ranking(metric, country)
    ranking_after = after.ranking(metric, country)
    rows = []
    top_before = ranking_before.top(k)
    top_after = ranking_after.top(k)
    for index in range(max(len(top_before), len(top_after))):
        b = top_before[index] if index < len(top_before) else None
        a = top_after[index] if index < len(top_after) else None
        delta_rank = None
        delta_share = 0.0
        if a is not None:
            old_rank = ranking_before.rank_of(a.asn)
            if old_rank is not None:
                delta_rank = old_rank - a.rank
            delta_share = (a.share or 0.0) - (ranking_before.share_of(a.asn) or 0.0)
        rows.append(
            TemporalRow(
                rank=index + 1,
                before_asn=b.asn if b else None,
                before_share=(b.share or 0.0) if b else 0.0,
                after_asn=a.asn if a else None,
                after_share=(a.share or 0.0) if a else 0.0,
                rank_delta=delta_rank,
                share_delta=delta_share,
            )
        )
    return TemporalComparison(
        metric=metric,
        country=country,
        before_label=before_label or before.world.name,
        after_label=after_label or after.world.name,
        rows=tuple(rows),
    )
