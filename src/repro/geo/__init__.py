"""Geolocation substrate: address database, prefix geolocation, VP geolocation."""

from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import (
    GeolocationStats,
    PrefixGeolocation,
    geolocate_prefixes,
)
from repro.geo.vp_geo import VPGeolocator

__all__ = [
    "GeoDatabase",
    "GeolocationStats",
    "PrefixGeolocation",
    "VPGeolocator",
    "geolocate_prefixes",
]
