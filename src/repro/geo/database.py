"""A synthetic per-address geolocation database (the NetAcuity stand-in).

The paper relies on a commercial service to geolocate end-host
addresses at country granularity (§3.2.1). Our database is derived from
the simulated world's ground-truth originations, deliberately degraded
the way real databases are:

* cross-border prefixes: a configured share of a prefix's addresses
  geolocates to a partner country (from the origination record);
* noise: a small fraction of sub-blocks is assigned to a wrong country;
* misses: a small fraction of sub-blocks has no entry at all.

Internally the database is a radix trie of geo-blocks; lookups use
most-specific match, and :meth:`country_shares` integrates the per-
country address fractions over any queried prefix — exactly the
operation the 50 %-threshold prefix geolocation needs.
"""

from __future__ import annotations

import random
import zlib
from typing import Mapping

from repro.net.prefix import Prefix
from repro.net.prefixtrie import PrefixTrie
from repro.topology.world import World

#: Sub-block granularity: each prefix is split into 2**_SPLIT_BITS
#: equal chunks when assigning shares/noise (16 chunks → 6.25 % steps).
_SPLIT_BITS = 4


class GeoDatabase:
    """Country-of-address lookups over a trie of geo-blocks."""

    def __init__(self, version: int = 4) -> None:
        self._trie: PrefixTrie[str] = PrefixTrie(version)
        self._version = version

    # -- construction -------------------------------------------------------

    @classmethod
    def from_world(
        cls,
        world: World,
        noise_rate: float = 0.02,
        miss_rate: float = 0.005,
        seed: int = 0,
        version: int = 4,
    ) -> "GeoDatabase":
        """Derive a noisy database from a world's ground truth.

        ``noise_rate``: probability (per origination) that one sub-block
        is assigned to a random wrong country. ``miss_rate``:
        probability that one sub-block is left out of the database
        entirely (geolocates to nowhere).
        """
        if not 0.0 <= noise_rate <= 1.0 or not 0.0 <= miss_rate <= 1.0:
            raise ValueError("noise_rate/miss_rate must be within [0, 1]")
        db = cls(version)
        all_codes = world.countries.codes()

        def uniform(kind: str, key: str) -> float:
            digest = zlib.crc32(f"{seed}:{kind}:{key}".encode())
            return (digest & 0xFFFFFFFF) / 4294967296.0

        def rng_of(key: str) -> random.Random:
            return random.Random(zlib.crc32(f"{seed}:rng:{key}".encode()))
        # Sort by (prefix, country) so equal seeds give equal databases.
        records = sorted(
            ((record.prefix, record) for _, record in world.graph.originations()),
            key=lambda item: item[0].sort_key(),
        )
        seen: set[Prefix] = set()
        for prefix, record in records:
            if prefix in seen or prefix.version != db._version:
                continue
            seen.add(prefix)
            db.assign(prefix, record.country)
            chunks = db._chunks(prefix)
            used: set[int] = set()
            if record.foreign_share > 0 and record.foreign_country and chunks:
                count = max(1, round(record.foreign_share * len(chunks)))
                for index in range(count):
                    db.assign(chunks[index], record.foreign_country)
                    used.add(index)
            # Hash-stable per-prefix noise: editing one AS elsewhere in
            # the world never moves another prefix's noise.
            free = [i for i in range(len(chunks)) if i not in used]
            key = str(prefix)
            if free and uniform("noise", key) < noise_rate:
                rng = rng_of(key)
                index = free.pop(rng.randrange(len(free)))
                wrong = rng.choice([c for c in all_codes if c != record.country])
                db.assign(chunks[index], wrong)
            if free and uniform("miss", key) < miss_rate:
                rng = rng_of("miss:" + key)
                index = free.pop(rng.randrange(len(free)))
                db.unassign(chunks[index])
        return db

    def assign(self, prefix: Prefix, country: str) -> None:
        """Map a geo-block to a country (most-specific wins on lookup)."""
        self._trie.insert(prefix, country)

    def unassign(self, prefix: Prefix) -> None:
        """Mark a geo-block as having no location (database miss)."""
        self._trie.insert(prefix, _NOWHERE)

    @staticmethod
    def _chunks(prefix: Prefix) -> list[Prefix]:
        split_to = min(prefix.length + _SPLIT_BITS, prefix.bits())
        if split_to == prefix.length:
            return []
        return prefix.subnets(split_to)

    # -- queries ---------------------------------------------------------------

    def lookup(self, version: int, value: int) -> str | None:
        """Country of one integer address, or ``None`` when unknown."""
        hit = self._trie.lookup_address(version, value)
        if hit is None or hit[1] is _NOWHERE:
            return None
        return hit[1]

    def lookup_text(self, address: str) -> str | None:
        """Country of a textual address."""
        from repro.net.prefix import parse_address

        version, value = parse_address(address)
        return self.lookup(version, value)

    def country_shares(self, prefix: Prefix) -> Mapping[str | None, float]:
        """Fraction of the prefix's addresses per country.

        The ``None`` key collects addresses with no database entry.
        Exact (not sampled): integrates the geo-block trie over the
        queried prefix.
        """
        if prefix.version != self._version:
            return {None: 1.0}
        mini: PrefixTrie[str] = PrefixTrie(self._version)
        cover = self._trie.longest_match(prefix)
        base = cover[1] if cover is not None else _NOWHERE
        mini.insert(prefix, base)
        for stored, country in self._trie.subtree(prefix):
            if stored != prefix:
                mini.insert(stored, country)
        totals: dict[str | None, int] = {}
        for block, _ in mini.decompose():
            hit = mini.longest_match(block)
            assert hit is not None
            country = hit[1]
            key = None if country is _NOWHERE else country
            totals[key] = totals.get(key, 0) + block.num_addresses()
        whole = prefix.num_addresses()
        return {country: count / whole for country, count in totals.items()}

    def majority_country(
        self, prefix: Prefix, threshold: float = 0.5
    ) -> str | None:
        """The country holding a strict-majority (> threshold) share."""
        shares = self.country_shares(prefix)
        best_country, best_share = None, 0.0
        for country, share in shares.items():
            if country is not None and share > best_share:
                best_country, best_share = country, share
        if best_country is not None and best_share > threshold:
            return best_country
        return None

    def __len__(self) -> int:
        return len(self._trie)


#: Sentinel stored for deliberate database misses.
_NOWHERE = "\x00nowhere"
