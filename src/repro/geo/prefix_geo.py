"""Majority-threshold prefix geolocation (paper §3.2.1 and Appendix B).

Procedure, as in the paper:

1. split the announced prefixes into non-overlapping blocks of
   addresses mapped to their most specific prefix;
2. drop prefixes entirely covered by more specifics (they own no
   addresses — 1.2 % of the paper's data);
3. geolocate the addresses of each prefix's *owned* blocks with the
   address database;
4. assign the prefix to a country only when that country holds a
   strict majority above the threshold (default 50 %) of the owned
   addresses; otherwise the prefix — and every path toward it — is
   filtered ("geolocated to no or multiple countries").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.geo.database import GeoDatabase
from repro.net.blocks import Block, split_into_blocks
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER


@dataclass(frozen=True, slots=True)
class GeolocationStats:
    """Per-country filtering statistics (Tables 13–14)."""

    country: str
    total_prefixes: int
    filtered_prefixes: int
    total_addresses: int
    filtered_addresses: int

    @property
    def pct_prefixes_filtered(self) -> float:
        """Percentage of the country's prefixes dropped by the threshold."""
        if self.total_prefixes == 0:
            return 0.0
        return 100.0 * self.filtered_prefixes / self.total_prefixes

    @property
    def pct_addresses_filtered(self) -> float:
        """Percentage of the country's addresses dropped by the threshold."""
        if self.total_addresses == 0:
            return 0.0
        return 100.0 * self.filtered_addresses / self.total_addresses


@dataclass
class PrefixGeolocation:
    """The outcome of geolocating one announced-prefix set."""

    threshold: float
    #: prefix -> assigned country (consensus reached)
    country_of: dict[Prefix, str]
    #: prefixes owning addresses but failing the majority threshold
    no_consensus: set[Prefix]
    #: prefixes entirely covered by more specifics (own no addresses)
    covered: set[Prefix]
    #: addresses each surviving prefix actually owns (its blocks)
    owned_addresses: dict[Prefix, int]
    #: plurality countries per surviving prefix (all countries tied at
    #: the maximum share; a singleton for any accepted prefix)
    plurality_of: dict[Prefix, tuple[str, ...]] = field(default_factory=dict)

    def country(self, prefix: Prefix) -> str | None:
        """The assigned country, or ``None`` when filtered/unknown."""
        return self.country_of.get(prefix)

    def accepted(self) -> list[Prefix]:
        """Prefixes with an assigned country, sorted."""
        return sorted(self.country_of, key=Prefix.sort_key)

    def addresses_by_country(self) -> dict[str, int]:
        """Total owned addresses per assigned country (the denominator
        of the paper's per-country percentages)."""
        totals: dict[str, int] = {}
        for prefix, country in self.country_of.items():
            totals[country] = totals.get(country, 0) + self.owned_addresses[prefix]
        return totals

    def prefixes_of_country(self, code: str) -> list[Prefix]:
        """Assigned prefixes of one country, sorted."""
        return sorted(
            (p for p, c in self.country_of.items() if c == code),
            key=Prefix.sort_key,
        )

    def stats_by_country(self) -> dict[str, GeolocationStats]:
        """Tables 13–14: per-country share of prefixes/addresses filtered.

        A filtered prefix is attributed to its plurality country (the
        country that held the largest share of its addresses).
        """
        totals: dict[str, list[int]] = {}
        for prefix in list(self.country_of) + sorted(
            self.no_consensus, key=Prefix.sort_key
        ):
            assigned = self.country_of.get(prefix)
            countries = (
                (assigned,) if assigned is not None
                else self.plurality_of.get(prefix, ())
            )
            addresses = self.owned_addresses.get(prefix, 0)
            for country in countries:
                entry = totals.setdefault(country, [0, 0, 0, 0])
                entry[0] += 1
                entry[2] += addresses
                if prefix in self.no_consensus:
                    entry[1] += 1
                    entry[3] += addresses
        return {
            country: GeolocationStats(country, *entry)
            for country, entry in sorted(totals.items())
        }


def geolocate_prefixes(
    prefixes: Iterable[Prefix],
    database: GeoDatabase,
    threshold: float = 0.5,
    version: int = 4,
    tracer=NULL_TRACER,
) -> PrefixGeolocation:
    """Run the full §3.2.1 pipeline over an announced-prefix set.

    ``tracer`` wraps the pass in a ``geolocate`` span and mirrors the
    outcome into ``geo.prefixes.accepted`` / ``geo.prefixes.covered`` /
    ``geo.prefixes.no_consensus`` counters and the
    ``geo.addresses.owned`` gauge.
    """
    with tracer.span("geolocate", threshold=threshold) as span:
        outcome = _geolocate_prefixes(prefixes, database, threshold, version)
        span.set(
            input=len(outcome.country_of) + len(outcome.no_consensus)
            + len(outcome.covered),
            output=len(outcome.country_of),
        )
        metrics = tracer.metrics
        metrics.counter("geo.prefixes.accepted").inc(len(outcome.country_of))
        metrics.counter("geo.prefixes.covered").inc(len(outcome.covered))
        metrics.counter("geo.prefixes.no_consensus").inc(
            len(outcome.no_consensus)
        )
        metrics.gauge("geo.addresses.owned").set(
            sum(outcome.owned_addresses.values())
        )
    return outcome


def _geolocate_prefixes(
    prefixes: Iterable[Prefix],
    database: GeoDatabase,
    threshold: float = 0.5,
    version: int = 4,
) -> PrefixGeolocation:
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold out of range: {threshold}")
    unique = sorted(
        {p for p in prefixes if p.version == version}, key=Prefix.sort_key
    )
    blocks = split_into_blocks(unique, version)
    owned: dict[Prefix, list[Block]] = {}
    for block in blocks:
        owned.setdefault(block.owner, []).append(block)

    covered = {prefix for prefix in unique if prefix not in owned}
    country_of: dict[Prefix, str] = {}
    no_consensus: set[Prefix] = set()
    owned_addresses: dict[Prefix, int] = {}
    plurality_of: dict[Prefix, tuple[str, ...]] = {}

    for prefix in unique:
        blocks_here = owned.get(prefix)
        if not blocks_here:
            continue
        total = sum(b.num_addresses() for b in blocks_here)
        owned_addresses[prefix] = total
        shares: dict[str | None, float] = {}
        for block in blocks_here:
            weight = block.num_addresses()
            for country, share in database.country_shares(block.prefix).items():
                shares[country] = shares.get(country, 0.0) + share * weight
        best_weight = max(
            (weight for country, weight in shares.items() if country is not None),
            default=0.0,
        )
        tied = tuple(sorted(
            country
            for country, weight in shares.items()
            if country is not None and weight >= best_weight - 1e-9
        ))
        plurality_of[prefix] = tied
        if len(tied) == 1 and best_weight / total > threshold:
            country_of[prefix] = tied[0]
        else:
            no_consensus.add(prefix)

    return PrefixGeolocation(
        threshold=threshold,
        country_of=country_of,
        no_consensus=no_consensus,
        covered=covered,
        owned_addresses=owned_addresses,
        plurality_of=plurality_of,
    )
