"""Vantage-point geolocation via collector locations (paper §3.2.2).

A VP inherits its collector's (IXP) country — unless the collector is
multi-hop, in which case the VP may peer remotely from anywhere and is
left unlocated; the sanitizer drops its paths. The paper geolocated 806
VPs (91 %) this way and excluded 74 multi-hop VPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.collectors import CollectorSet, VantagePoint


@dataclass
class VPGeolocator:
    """Maps VPs to trusted countries using the collector roster."""

    collectors: CollectorSet

    def country(self, vp: VantagePoint) -> str | None:
        """The VP's country, or ``None`` for multi-hop (untrusted) VPs."""
        return self.collectors.vp_country(vp)

    def located(self) -> list[VantagePoint]:
        """VPs with a trusted location."""
        return self.collectors.geolocatable_vps()

    def unlocated(self) -> list[VantagePoint]:
        """VPs without one (multi-hop collectors)."""
        return self.collectors.multihop_vps()

    def census(self) -> dict[str, int]:
        """Located VPs per country (Tables 3–4 input)."""
        counts: dict[str, int] = {}
        for vp in self.located():
            country = self.country(vp)
            assert country is not None
            counts[country] = counts.get(country, 0) + 1
        return dict(sorted(counts.items()))
