"""repro — country-level AS rankings over a simulated BGP substrate.

A full reproduction of "On the Importance of Being an AS: An Approach
to Country-Level AS Rankings" (IMC 2023): the four country metrics
(CCI, CCN, AHI, AHN), the baselines they are compared against (CCG,
AHG, AHC, CTI), the Table-1 sanitization pipeline, the NDCG stability
methodology, and every substrate required to run them — a country-aware
topology generator, a valley-free BGP simulator with collectors and
vantage points, a synthetic geolocation database, and a Luckie-style
relationship inference.

Quickstart::

    from repro import generate_world, run_pipeline
    result = run_pipeline(generate_world(seed=7))
    print(result.ranking("AHN", "AU").render(5, result.as_name))
"""

from repro.core.pipeline import (
    ALL_METRICS,
    COUNTRY_METRICS,
    GLOBAL_METRICS,
    Pipeline,
    PipelineConfig,
    PipelineResult,
    run_pipeline,
)
from repro.core.ranking import RankEntry, Ranking
from repro.core.registry import (
    METRICS,
    MetricSpec,
    get_spec,
    metric_names,
    normalize_country,
    paper_metrics,
)
from repro.core.ndcg import dcg, ndcg
from repro.obs import Tracer, stage_report, to_jsonl, to_prometheus
from repro.perf import PathIndex, SuffixCache, ViewComputation, ViewSlicer
from repro.resilience import (
    Checkpoint,
    FaultPlan,
    Quarantine,
    RetryPolicy,
    resilient_map,
)
from repro.topology.generator import (
    GeneratorConfig,
    generate_world,
    iter_world_records,
)
from repro.topology.profiles import (
    default_profiles,
    large_profiles,
    small_profiles,
)
from repro.topology.world import World

__version__ = "1.0.0"

__all__ = [
    "ALL_METRICS",
    "COUNTRY_METRICS",
    "Checkpoint",
    "FaultPlan",
    "GLOBAL_METRICS",
    "GeneratorConfig",
    "METRICS",
    "MetricSpec",
    "PathIndex",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "Quarantine",
    "RankEntry",
    "Ranking",
    "RetryPolicy",
    "SuffixCache",
    "Tracer",
    "ViewComputation",
    "ViewSlicer",
    "World",
    "__version__",
    "dcg",
    "default_profiles",
    "generate_world",
    "get_spec",
    "iter_world_records",
    "large_profiles",
    "metric_names",
    "ndcg",
    "normalize_country",
    "paper_metrics",
    "resilient_map",
    "run_pipeline",
    "small_profiles",
    "stage_report",
    "to_jsonl",
    "to_prometheus",
]
