"""Drift detection between consecutive snapshot rankings.

Three complementary signals per (metric, country) cell, following the
paper's own comparison toolkit:

* **Kendall-τ** over the full rankings' shared ASes (the §3.3 rank-
  agreement statistic, via :func:`repro.analysis.rank_correlation.kendall_tau`)
  — global reordering;
* **NDCG@k** of the later ranking scored against the earlier one
  (:func:`repro.core.ndcg.ndcg`) — did the previously-important ASes
  keep their importance;
* **top-k churn** — which ASes entered or exited the top-k and how
  the survivors shifted, generalizing the two-snapshot
  :class:`repro.analysis.temporal.TemporalRow` tables (10/11) to a
  rolling stream.

:func:`alert_reasons` turns a drift report into alert material: τ or
NDCG below threshold pages; churn alone (the Table-10 signal — AS3257
leaving, AS5511 arriving) is a notice. All of it is pure arithmetic
over :class:`repro.core.ranking.Ranking` pairs — no clocks, no state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rank_correlation import kendall_tau
from repro.core.ndcg import ndcg
from repro.core.ranking import Ranking


@dataclass(frozen=True, slots=True)
class RankShift:
    """One AS that stayed in the top-k but changed rank."""

    asn: int
    before_rank: int
    after_rank: int

    @property
    def delta(self) -> int:
        """Positive = climbed (rank number decreased)."""
        return self.before_rank - self.after_rank


@dataclass(frozen=True, slots=True)
class TopChurn:
    """Membership turnover in the top-k between two snapshots."""

    k: int
    entered: tuple[int, ...]  # in the later ranking's order
    exited: tuple[int, ...]  # in the earlier ranking's order
    shifts: tuple[RankShift, ...]  # common ASes whose rank changed

    def quiet(self) -> bool:
        """True when the top-k membership did not change at all."""
        return not self.entered and not self.exited


@dataclass(frozen=True, slots=True)
class DriftReport:
    """Everything measured for one (metric, country) cell across one
    consecutive snapshot pair."""

    metric: str
    country: str | None
    before_label: str
    after_label: str
    tau: float
    ndcg: float
    churn: TopChurn


def top_churn(before: Ranking, after: Ranking, k: int) -> TopChurn:
    """Top-k membership turnover, ordered deterministically."""
    before_top = before.top_asns(k)
    after_top = after.top_asns(k)
    before_set = set(before_top)
    after_set = set(after_top)
    shifts = tuple(
        RankShift(asn, before.rank_of(asn), after.rank_of(asn))
        for asn in before_top
        if asn in after_set and before.rank_of(asn) != after.rank_of(asn)
    )
    return TopChurn(
        k=k,
        entered=tuple(asn for asn in after_top if asn not in before_set),
        exited=tuple(asn for asn in before_top if asn not in after_set),
        shifts=shifts,
    )


def full_tau(before: Ranking, after: Ranking) -> float:
    """Kendall's τ-a over all ASes ranked in both snapshots."""
    pairs = [
        (entry.rank, after.rank_of(entry.asn))
        for entry in before.entries
        if after.rank_of(entry.asn) is not None
    ]
    return kendall_tau(pairs)


def measure_drift(
    before: Ranking,
    after: Ranking,
    before_label: str,
    after_label: str,
    k: int,
    metric: str | None = None,
    country: str | None = None,
) -> DriftReport:
    """All three drift signals for one consecutive snapshot pair.

    NDCG scores the *later* ordering against the *earlier* relevance
    values: 1.0 means yesterday's important ASes kept both membership
    and order. ``metric`` defaults to the earlier ranking's label;
    the engine passes the registry's canonical name instead.
    """
    return DriftReport(
        metric=metric if metric is not None else before.metric,
        country=country if country is not None else before.country,
        before_label=before_label,
        after_label=after_label,
        tau=full_tau(before, after),
        ndcg=ndcg(before, after, k=k),
        churn=top_churn(before, after, k),
    )


def alert_reasons(
    report: DriftReport, tau_threshold: float, ndcg_threshold: float
) -> tuple[str, tuple[str, ...]]:
    """(severity, reasons) for a drift report; reasons empty = no alert.

    Threshold breaches on the global statistics page; top-k membership
    churn alone is a notice — visible but not noisy, since one AS
    swapping at rank 10 is routine while a τ collapse is not.
    """
    reasons: list[str] = []
    severity = "notice"
    if report.tau < tau_threshold:
        reasons.append(
            f"kendall-tau {report.tau:.3f} below threshold {tau_threshold:g}"
        )
        severity = "page"
    if report.ndcg < ndcg_threshold:
        reasons.append(
            f"ndcg {report.ndcg:.3f} below threshold {ndcg_threshold:g}"
        )
        severity = "page"
    if not report.churn.quiet():
        churn = report.churn
        reasons.append(
            f"top-{churn.k} churn: {len(churn.entered)} entered, "
            f"{len(churn.exited)} exited"
        )
    return severity, tuple(reasons)
