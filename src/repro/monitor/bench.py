"""Timing helpers for the watch engine's benchmark suite.

This module is the monitor package's *only* wall-clock reader (it is
on repro-lint R002's allowlist for exactly that reason): everything in
:mod:`repro.monitor.engine` stays clock-free so the event stream stays
byte-identical. The measurements land in the tracer's registry as
``monitor.*`` gauges, keeping even benchmark telemetry on the obs
export path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.monitor.engine import WatchConfig, WatchRun, watch
from repro.monitor.snapshots import SnapshotRef
from repro.obs.trace import NULL_TRACER, AnyTracer


@dataclass(frozen=True, slots=True)
class WatchTiming:
    """Best-of-N wall time for one watch configuration."""

    run: WatchRun
    seconds: float
    events: int
    events_per_s: float


def measure_watch(
    refs: Sequence[SnapshotRef],
    config: WatchConfig,
    tracer: AnyTracer = NULL_TRACER,
    repeats: int = 3,
) -> WatchTiming:
    """Run :func:`watch` ``repeats`` times, keeping the best wall time
    (the standard best-of-N noise shield the benchmark suite uses).

    Each repeat gets the tracer passed in — measuring with obs enabled
    means a live :class:`repro.obs.Tracer`, disabled means
    :data:`NULL_TRACER` — so the caller compares like with like.
    """
    best = float("inf")
    run: WatchRun | None = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run = watch(refs, config, tracer=tracer)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    events = len(run.events)
    rate = events / best if best > 0 else 0.0
    tracer.metrics.gauge("monitor.events_per_s").set(rate)
    return WatchTiming(run=run, seconds=best, events=events, events_per_s=rate)
