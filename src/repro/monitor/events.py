"""The watch event stream: typed, schema-validated, deterministic.

A watch run is externally observable as a flat JSONL stream of four
event types, emitted in processing order:

``snapshot``
    one per world snapshot entering the engine, before any of its
    rankings — carries the record count and the resolved monitoring
    grid size;
``ranking``
    one per (snapshot, metric, country) cell — carries the ranking
    size and the top-k entries ``[rank, asn, share]``;
``drift``
    one per cell per consecutive snapshot pair — Kendall-τ and NDCG
    over the full rankings plus the top-k churn (entered / exited /
    rank shifts);
``alert``
    emitted when a drift crosses the configured thresholds — carries
    the severity and the human-readable reasons.

Every event has a monotonically increasing ``seq`` and a 12-hex-char
``id`` derived from the event's identifying content (never from a
clock or RNG), so the stream is **byte-identical** for a fixed
snapshot set and config — rerun, reseeded worker counts, and
checkpoint-resumed runs all reproduce it exactly. Floats are rounded
to 6 places before serialization so the bytes never depend on
intermediate summation noise in renderers.

:func:`validate_watch_events` is the schema check ``make watch-smoke``
and the monitor tests run over emitted streams (the watch counterpart
of :func:`repro.obs.export.validate_events`).
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import TYPE_CHECKING, Iterable

from repro.core.ranking import Ranking

if TYPE_CHECKING:
    from repro.monitor.drift import DriftReport

#: the watch event vocabulary, in emission-precedence order
EVENT_TYPES = ("snapshot", "ranking", "drift", "alert")

#: alert severities, mildest first
SEVERITIES = ("notice", "page")

_ID_RE = re.compile(r"^[0-9a-f]{12}$")


def event_id(seq: int, kind: str, *parts: object) -> str:
    """A deterministic 12-hex-char id for one event.

    Hashes the sequence number, the kind, and the identifying parts —
    no clocks, no RNG — so the same stream position in the same run
    always gets the same id (the resume contract depends on this).
    """
    material = "|".join([str(seq), kind, *(str(part) for part in parts)])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def _round(value: float) -> float:
    return round(float(value), 6)


# -- event builders -----------------------------------------------------------


def snapshot_event(
    seq: int, index: int, label: str, source: str, records: int, pairs: int
) -> dict:
    """The event announcing one snapshot entering the engine."""
    return {
        "type": "snapshot",
        "id": event_id(seq, "snapshot", label, index),
        "seq": seq,
        "index": index,
        "snapshot": label,
        "source": source,
        "records": records,
        "pairs": pairs,
    }


def ranking_event(
    seq: int, label: str, ranking: Ranking, metric: str,
    country: str | None, top: int,
) -> dict:
    """The event recording one computed (or resumed) ranking."""
    return {
        "type": "ranking",
        "id": event_id(seq, "ranking", label, metric, country),
        "seq": seq,
        "snapshot": label,
        "metric": metric,
        "country": country,
        "size": len(ranking.entries),
        "top": [
            [
                entry.rank,
                entry.asn,
                None if entry.share is None else _round(entry.share),
            ]
            for entry in ranking.top(top)
        ],
    }


def drift_event(seq: int, report: "DriftReport") -> dict:
    """The event recording one consecutive-snapshot drift measurement."""
    return {
        "type": "drift",
        "id": event_id(
            seq, "drift", report.metric, report.country,
            report.before_label, report.after_label,
        ),
        "seq": seq,
        "metric": report.metric,
        "country": report.country,
        "before": report.before_label,
        "after": report.after_label,
        "tau": _round(report.tau),
        "ndcg": _round(report.ndcg),
        "top": report.churn.k,
        "entered": list(report.churn.entered),
        "exited": list(report.churn.exited),
        "shifts": [
            [shift.asn, shift.before_rank, shift.after_rank]
            for shift in report.churn.shifts
        ],
    }


def alert_event(
    seq: int, report: "DriftReport", severity: str, reasons: tuple[str, ...]
) -> dict:
    """The event recording one threshold crossing."""
    return {
        "type": "alert",
        "id": event_id(
            seq, "alert", report.metric, report.country,
            report.before_label, report.after_label,
        ),
        "seq": seq,
        "metric": report.metric,
        "country": report.country,
        "before": report.before_label,
        "after": report.after_label,
        "severity": severity,
        "tau": _round(report.tau),
        "ndcg": _round(report.ndcg),
        "reasons": list(reasons),
    }


# -- serialization ------------------------------------------------------------


def events_to_jsonl(events: Iterable[dict]) -> str:
    """The event stream as JSON Lines text (sorted keys: the byte-
    identity contract covers this exact serialization)."""
    return "\n".join(json.dumps(event, sort_keys=True) for event in events)


# -- validation ---------------------------------------------------------------


def validate_watch_events(events: Iterable[dict]) -> list[str]:
    """Schema-check a watch event stream; returns problems (empty = valid).

    Rules: every event has a known ``type``, a well-formed unique
    ``id``, and a ``seq`` strictly increasing from 0; ``ranking`` /
    ``drift`` / ``alert`` events reference snapshot labels already
    announced by an earlier ``snapshot`` event; ``tau`` lies in
    [-1, 1]; ``ndcg`` is non-negative; ``ranking.top`` ranks ascend;
    alerts carry at least one reason and a known severity.
    """
    problems: list[str] = []
    seen_ids: set[str] = set()
    seen_labels: set[str] = set()
    expected_seq = 0
    for index, event in enumerate(events):
        where = f"event {index}"
        kind = event.get("type")
        if kind not in EVENT_TYPES:
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        eid = event.get("id")
        if not isinstance(eid, str) or _ID_RE.fullmatch(eid) is None:
            problems.append(f"{where}: malformed id {eid!r}")
        elif eid in seen_ids:
            problems.append(f"{where}: duplicate id {eid}")
        else:
            seen_ids.add(eid)
        seq = event.get("seq")
        if seq != expected_seq:
            problems.append(f"{where}: seq {seq!r} (expected {expected_seq})")
        expected_seq += 1
        if kind == "snapshot":
            label = event.get("snapshot")
            if not isinstance(label, str) or not label:
                problems.append(f"{where}: missing snapshot label")
            else:
                seen_labels.add(label)
            for field in ("records", "pairs", "index"):
                value = event.get(field)
                if not isinstance(value, int) or value < 0:
                    problems.append(f"{where}: bad {field} {value!r}")
            continue
        labels = (
            [event.get("snapshot")] if kind == "ranking"
            else [event.get("before"), event.get("after")]
        )
        for label in labels:
            if label not in seen_labels:
                problems.append(
                    f"{where}: references snapshot {label!r} before its "
                    "snapshot event"
                )
        if kind == "ranking":
            size = event.get("size")
            if not isinstance(size, int) or size < 0:
                problems.append(f"{where}: bad size {size!r}")
            top = event.get("top")
            if not isinstance(top, list):
                problems.append(f"{where}: top is not a list")
            else:
                ranks = [row[0] for row in top if isinstance(row, list) and row]
                if ranks != sorted(ranks):
                    problems.append(f"{where}: top ranks not ascending")
        else:  # drift / alert
            tau = event.get("tau")
            if not isinstance(tau, (int, float)) or not -1.0 <= tau <= 1.0:
                problems.append(f"{where}: tau {tau!r} outside [-1, 1]")
            ndcg_value = event.get("ndcg")
            if not isinstance(ndcg_value, (int, float)) or ndcg_value < 0:
                problems.append(f"{where}: bad ndcg {ndcg_value!r}")
        if kind == "alert":
            if event.get("severity") not in SEVERITIES:
                problems.append(
                    f"{where}: unknown severity {event.get('severity')!r}"
                )
            reasons = event.get("reasons")
            if not isinstance(reasons, list) or not reasons:
                problems.append(f"{where}: alert without reasons")
    return problems


def validate_watch_jsonl(text: str) -> list[str]:
    """Parse JSONL text and schema-check it (parse errors included)."""
    events: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            return [f"line {lineno}: not JSON ({error.msg})"]
    return validate_watch_events(events)
