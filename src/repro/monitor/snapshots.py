"""Resolving watch inputs into an ordered snapshot stream.

The watch CLI accepts a mixed list of snapshot specs and this module
turns them into :class:`SnapshotRef` objects — labelled, ordered, and
loadable on demand (the engine never materializes two pipelines at
once):

* ``paper2021`` / ``small`` … — a named world from the catalog
  (:mod:`repro.topology.catalog`), built with the run seed;
* ``small@7`` — a named world with an explicit per-snapshot seed,
  which is how a synthetic "day stream" is scripted (``small@0
  small@1 small@2``: same profile, fresh draw per day);
* ``path/to/paths.jsonl`` — a released dataset, replayed through
  :class:`repro.io.replay.ReplaySession`;
* a directory or glob — expanded to its ``*.jsonl`` files in sorted
  (= chronological, for date-stamped names) order.

Labels are derived from the spec alone, before any loading, because
they key the checkpoint units and the event stream: the label must be
identical on resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Union

from repro.io.replay import ReplaySession
from repro.topology.catalog import WORLD_CHOICES, build_world


class WatchError(ValueError):
    """Raised for unresolvable snapshot specs and invalid watch input."""


#: what :meth:`SnapshotRef.load` yields — both expose
#: ``.ranking(metric, country)`` and ``.paths``
SnapshotProvider = Union["ReplaySession", "object"]


@dataclass(frozen=True, slots=True)
class SnapshotRef:
    """One snapshot in the stream, resolvable to rankings on demand."""

    label: str
    kind: str  # "world" | "release"
    spec: str  # the original user-supplied spec (for error messages)
    world: str | None = None  # catalog name, world refs only
    seed: int | None = None  # per-snapshot seed, world refs only
    path: str | None = None  # paths.jsonl location, release refs only

    def load(
        self,
        seed: int,
        workers: int,
        trim: float,
        tracer=None,
        propagation_bases=None,
        capture_bases: bool = False,
    ):
        """Materialize the snapshot's ranking provider.

        World refs run the full pipeline (under ``tracer`` so its
        stages appear as spans of the surrounding watch.load span);
        release refs open a :class:`ReplaySession` over the file.

        ``propagation_bases``/``capture_bases`` thread incremental
        propagation state between consecutive world snapshots (see
        :meth:`repro.core.pipeline.PipelineResult.propagation_bases`);
        release refs ignore both.
        """
        if self.kind == "world":
            from repro.core.pipeline import PipelineConfig, run_pipeline

            effective = self.seed if self.seed is not None else seed
            config = PipelineConfig(seed=effective, workers=workers, trim=trim)
            return run_pipeline(
                build_world(self.world, effective), config, tracer=tracer,
                propagation_bases=propagation_bases,
                capture_bases=capture_bases,
            )
        return ReplaySession.from_file(self.path, trim=trim)


def _world_ref(spec: str) -> SnapshotRef | None:
    """Parse ``name`` / ``name@seed`` against the world catalog."""
    name, sep, seed_text = spec.partition("@")
    if name not in WORLD_CHOICES:
        return None
    seed: int | None = None
    if sep:
        try:
            seed = int(seed_text)
        except ValueError:
            raise WatchError(
                f"snapshot {spec!r}: seed {seed_text!r} is not an integer"
            ) from None
        if seed < 0:
            raise WatchError(f"snapshot {spec!r}: seed must be >= 0")
    label = name if seed is None else f"{name}@{seed}"
    return SnapshotRef(label=label, kind="world", spec=spec, world=name, seed=seed)


def _release_refs(spec: str) -> list[SnapshotRef]:
    """Expand a file / directory / glob spec to release refs."""
    path = Path(spec)
    if path.is_file():
        files = [path]
    elif path.is_dir():
        files = sorted(path.glob("*.jsonl"))
        if not files:
            raise WatchError(f"snapshot {spec!r}: directory has no *.jsonl files")
    elif any(ch in spec for ch in "*?["):
        files = sorted(path.parent.glob(path.name))
        files = [f for f in files if f.is_file()]
        if not files:
            raise WatchError(f"snapshot {spec!r}: glob matched no files")
    else:
        raise WatchError(
            f"snapshot {spec!r}: not a known world "
            f"({', '.join(WORLD_CHOICES)}), file, directory, or glob"
        )
    return [
        SnapshotRef(label=f.stem, kind="release", spec=spec, path=str(f))
        for f in files
    ]


def resolve_snapshots(specs: Iterable[str]) -> list[SnapshotRef]:
    """Resolve specs, in order, into a stream of snapshot refs.

    Labels must be unique — the stream, the checkpoint units, and the
    drift before/after identifiers all key on them. Duplicate labels
    (e.g. two directories both containing ``day1.jsonl``) fall back to
    their full path, and a collision after that is an error.
    """
    refs: list[SnapshotRef] = []
    for spec in specs:
        spec = spec.strip()
        if not spec:
            raise WatchError("empty snapshot spec")
        world = _world_ref(spec)
        refs.extend([world] if world is not None else _release_refs(spec))
    if len(refs) < 2:
        raise WatchError(
            f"need at least 2 snapshots to watch for drift (got {len(refs)})"
        )
    labels = [ref.label for ref in refs]
    if len(set(labels)) != len(labels):
        relabelled: list[SnapshotRef] = []
        for ref in refs:
            if labels.count(ref.label) > 1 and ref.path is not None:
                relabelled.append(SnapshotRef(
                    label=ref.path, kind=ref.kind, spec=ref.spec, path=ref.path,
                ))
            else:
                relabelled.append(ref)
        refs = relabelled
        labels = [ref.label for ref in refs]
        if len(set(labels)) != len(labels):
            duplicate = next(l for l in labels if labels.count(l) > 1)
            raise WatchError(f"duplicate snapshot label {duplicate!r}")
    return refs
