"""Temporal monitoring over snapshot streams (``repro-rank watch``).

The monitor package turns the repro's one-off two-snapshot comparison
(:mod:`repro.analysis.temporal`) into a streaming engine: resolve an
ordered list of snapshots (:mod:`.snapshots`), compute the configured
metric/country grid on each (:mod:`.engine`), measure drift between
consecutive snapshots (:mod:`.drift`), and emit a deterministic,
schema-validated event stream (:mod:`.events`) through the obs layer.
"""

from repro.monitor.drift import (
    DriftReport,
    RankShift,
    TopChurn,
    alert_reasons,
    full_tau,
    measure_drift,
    top_churn,
)
from repro.monitor.engine import (
    WatchConfig,
    WatchRun,
    render_watch,
    watch,
    watch_key,
)
from repro.monitor.events import (
    EVENT_TYPES,
    event_id,
    events_to_jsonl,
    validate_watch_events,
    validate_watch_jsonl,
)
from repro.monitor.snapshots import SnapshotRef, WatchError, resolve_snapshots

__all__ = [
    "DriftReport",
    "EVENT_TYPES",
    "RankShift",
    "SnapshotRef",
    "TopChurn",
    "WatchConfig",
    "WatchError",
    "WatchRun",
    "alert_reasons",
    "event_id",
    "events_to_jsonl",
    "full_tau",
    "measure_drift",
    "render_watch",
    "resolve_snapshots",
    "top_churn",
    "validate_watch_events",
    "validate_watch_jsonl",
    "watch",
    "watch_key",
]
