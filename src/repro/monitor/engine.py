"""The watch engine: rankings, drift, and events over a snapshot stream.

:func:`watch` walks an ordered list of :class:`SnapshotRef`\\ s, computes
the configured (metric, country) grid on each snapshot, measures drift
against the previous snapshot (:mod:`repro.monitor.drift`), and emits
the typed event stream (:mod:`repro.monitor.events`). One snapshot's
provider is alive at a time; the previous snapshot survives only as its
grid of rankings, so day N-1 is never recomputed and memory stays flat
in the stream length.

Determinism contract (pinned by ``tests/monitor/test_engine.py``):

* the event stream is **byte-identical** across reruns for a fixed
  snapshot list and config — no clocks, no RNG, no dict-order
  dependence anywhere in the event path;
* it is also byte-identical across a ``--resume`` from any checkpoint
  prefix: resumed rankings are value-exact
  (:func:`repro.resilience.checkpoint.ranking_to_payload`), snapshot
  metadata (record counts, the resolved country grid) is banked in the
  checkpoint so a fully-banked snapshot is never reloaded, and event
  ids hash stream position + content, never provenance;
* the tracer is observe-only: running under a real
  :class:`repro.obs.Tracer` versus :data:`NULL_TRACER` changes spans
  and ``monitor.*`` instruments, never one byte of the stream.

Checkpoint units (stable names — resumable files depend on them):
``watch-snapshot:{label}`` holds ``{"records", "countries"}``;
``watch-ranking:{label}:{spec.unit_key(country)}`` holds the ranking
payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.ranking import Ranking
from repro.core.registry import MetricSpec, get_spec, normalize_country
from repro.monitor.drift import alert_reasons, measure_drift
from repro.monitor.events import (
    alert_event,
    drift_event,
    events_to_jsonl,
    ranking_event,
    snapshot_event,
)
from repro.monitor.snapshots import SnapshotRef, WatchError
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.checkpoint import ranking_from_payload, ranking_to_payload

if TYPE_CHECKING:
    from repro.resilience.checkpoint import Checkpoint


@dataclass(frozen=True, slots=True)
class WatchConfig:
    """Everything that shapes a watch run's event stream.

    Every field participates in :func:`watch_key` — a checkpoint
    written under one config never resumes a run under another.
    """

    metrics: tuple[str, ...] = ("CCI", "AHI")
    #: monitoring grid; ``None`` resolves from the first snapshot
    countries: tuple[str, ...] | None = None
    #: churn window (the paper's TRA uses the top 10)
    top: int = 10
    #: alert when full-ranking Kendall-τ falls below this
    tau_threshold: float = 0.8
    #: alert when NDCG@top falls below this
    ndcg_threshold: float = 0.9
    #: pipeline seed for world snapshots without an explicit ``@seed``
    seed: int = 0
    #: process fan-out for world pipelines (never changes outputs)
    workers: int = 1
    #: trimmed-mean fraction for the hegemony/CTI family
    trim: float = 0.1
    #: thread propagation bases between consecutive world snapshots so
    #: only origins whose reachable region changed re-propagate; like
    #: ``workers``, byte-identical output, so excluded from watch_key
    incremental: bool = True

    def __post_init__(self) -> None:
        if not self.metrics:
            raise WatchError("need at least one metric to watch")
        if self.countries is not None and not self.countries:
            raise WatchError("need at least one country to watch")
        if self.top < 1:
            raise WatchError(f"top must be >= 1 (got {self.top})")
        if not -1.0 <= self.tau_threshold <= 1.0:
            raise WatchError(
                f"tau threshold out of [-1, 1]: {self.tau_threshold}"
            )
        if not 0.0 <= self.ndcg_threshold <= 1.0:
            raise WatchError(
                f"ndcg threshold out of [0, 1]: {self.ndcg_threshold}"
            )


def watch_key(labels: Sequence[str], config: WatchConfig) -> str:
    """The checkpoint content key for one watch run: the snapshot
    stream plus every config knob that shapes events (``workers`` is
    deliberately excluded — fan-out never changes outputs)."""
    stream = ",".join(labels)
    grid = ",".join(config.countries) if config.countries is not None else "<auto>"
    return (
        f"watch/stream={stream}/metrics={','.join(config.metrics)}"
        f"/countries={grid}/top={config.top}"
        f"/tau={config.tau_threshold!r}/ndcg={config.ndcg_threshold!r}"
        f"/seed={config.seed}/trim={config.trim!r}"
    )


@dataclass(frozen=True, slots=True)
class WatchRun:
    """Everything one watch run produced."""

    events: tuple[dict, ...]
    labels: tuple[str, ...]
    metrics: tuple[str, ...]
    countries: tuple[str, ...]
    computed_units: int
    resumed_units: int

    def jsonl(self) -> str:
        """The event stream as JSONL (the byte-identity surface)."""
        return events_to_jsonl(self.events)

    def alerts(self) -> list[dict]:
        return [e for e in self.events if e["type"] == "alert"]

    def drifts(self) -> list[dict]:
        return [e for e in self.events if e["type"] == "drift"]


def _resolve_specs(
    refs: Sequence[SnapshotRef], config: WatchConfig
) -> list[MetricSpec]:
    """Validate the metric list up front, before any loading."""
    specs: list[MetricSpec] = []
    for name in config.metrics:
        try:
            spec = get_spec(name)
        except ValueError as error:
            raise WatchError(str(error)) from None
        if not spec.replayable and any(r.kind == "release" for r in refs):
            raise WatchError(
                f"metric {spec.name!r} cannot be replayed from released "
                "snapshots"
            )
        specs.append(spec)
    return specs


def _provider_countries(provider: object) -> list[str]:
    """The auto-resolved country grid for the first snapshot: countries
    with a qualifying national view for pipeline snapshots, every
    observed destination country for released ones."""
    chooser = getattr(provider, "countries_with_national_view", None)
    if chooser is not None:
        return list(chooser())
    return list(provider.paths.countries())


def watch(
    refs: Sequence[SnapshotRef],
    config: WatchConfig | None = None,
    tracer: AnyTracer = NULL_TRACER,
    checkpoint: "Checkpoint | None" = None,
) -> WatchRun:
    """Run the monitoring engine over an ordered snapshot stream."""
    config = config or WatchConfig()
    if len(refs) < 2:
        raise WatchError(
            f"need at least 2 snapshots to watch for drift (got {len(refs)})"
        )
    specs = _resolve_specs(refs, config)
    countries = (
        None if config.countries is None
        else [normalize_country(c) for c in config.countries]
    )
    metrics = tracer.metrics
    events: list[dict] = []
    previous: dict[tuple[str, str | None], Ranking] | None = None
    previous_label: str | None = None
    #: per-plane propagation bases handed from one world snapshot's
    #: pipeline to the next (None after a release snapshot, a resume
    #: hit, or with config.incremental off)
    bases: list | None = None
    computed_units = 0
    resumed_units = 0

    def emit(event: dict) -> None:
        events.append(event)
        metrics.counter("monitor.events").inc()

    with tracer.span("watch", snapshots=len(refs), metrics=len(specs)):
        for index, ref in enumerate(refs):
            meta_unit = f"watch-snapshot:{ref.label}"
            meta = checkpoint.get(meta_unit) if checkpoint is not None else None

            # Load lazily: a fully-banked snapshot never materializes
            # its pipeline/replay provider on resume.
            provider: object | None = None

            def load() -> object:
                nonlocal provider
                if provider is None:
                    with tracer.span(
                        "watch.load", snapshot=ref.label, kind=ref.kind,
                    ):
                        provider = ref.load(
                            config.seed, config.workers, config.trim,
                            tracer=tracer,
                            propagation_bases=(
                                bases if config.incremental else None
                            ),
                            capture_bases=config.incremental,
                        )
                    metrics.counter("monitor.snapshots.loaded").inc()
                return provider

            if countries is None:
                countries = (
                    [normalize_country(c) for c in meta["countries"]]
                    if meta is not None
                    else sorted(
                        normalize_country(c)
                        for c in _provider_countries(load())
                    )
                )
                if not countries:
                    raise WatchError(
                        f"snapshot {ref.label!r} yields no monitorable "
                        "countries; pass --countries explicitly"
                    )

            units: list[tuple[MetricSpec, str | None]] = []
            seen: set[tuple[str, str | None]] = set()
            for spec in specs:
                for country in (countries if spec.needs_country else [None]):
                    unit = (spec.name, country)
                    if unit not in seen:
                        seen.add(unit)
                        units.append((spec, country))

            with tracer.span(
                "watch.snapshot", snapshot=ref.label, pairs=len(units),
            ):
                records = (
                    meta["records"] if meta is not None
                    else len(load().paths.records)
                )
                emit(snapshot_event(
                    seq=len(events), index=index, label=ref.label,
                    source=ref.kind, records=records, pairs=len(units),
                ))
                if checkpoint is not None and meta is None:
                    checkpoint.put(meta_unit, {
                        "records": records, "countries": list(countries),
                    })

                current: dict[tuple[str, str | None], Ranking] = {}
                for spec, country in units:
                    unit_name = (
                        f"watch-ranking:{ref.label}:{spec.unit_key(country)}"
                    )
                    payload = (
                        checkpoint.get(unit_name)
                        if checkpoint is not None else None
                    )
                    if payload is not None:
                        ranking = ranking_from_payload(payload)
                        resumed_units += 1
                        metrics.counter("monitor.rankings.resumed").inc()
                    else:
                        with tracer.span(
                            "watch.ranking", snapshot=ref.label,
                            metric=spec.name, country=country,
                        ):
                            ranking = load().ranking(spec.name, country)
                        computed_units += 1
                        metrics.counter("monitor.rankings.computed").inc()
                        if checkpoint is not None:
                            checkpoint.put(
                                unit_name, ranking_to_payload(ranking)
                            )
                    current[(spec.name, country)] = ranking
                    emit(ranking_event(
                        seq=len(events), label=ref.label, ranking=ranking,
                        metric=spec.name, country=country, top=config.top,
                    ))

                if previous is not None:
                    for spec, country in units:
                        before = previous.get((spec.name, country))
                        if before is None:
                            continue
                        with tracer.span(
                            "watch.drift", metric=spec.name, country=country,
                            before=previous_label, after=ref.label,
                        ):
                            report = measure_drift(
                                before, current[(spec.name, country)],
                                previous_label, ref.label, k=config.top,
                                metric=spec.name, country=country,
                            )
                        emit(drift_event(seq=len(events), report=report))
                        metrics.counter("monitor.drifts").inc()
                        metrics.histogram("monitor.drift.tau").observe(report.tau)
                        metrics.histogram("monitor.drift.ndcg").observe(report.ndcg)
                        metrics.counter("monitor.churn.entered").inc(
                            len(report.churn.entered)
                        )
                        metrics.counter("monitor.churn.exited").inc(
                            len(report.churn.exited)
                        )
                        severity, reasons = alert_reasons(
                            report, config.tau_threshold, config.ndcg_threshold,
                        )
                        if reasons:
                            emit(alert_event(
                                seq=len(events), report=report,
                                severity=severity, reasons=reasons,
                            ))
                            metrics.counter("monitor.alerts").inc()

            previous = current
            previous_label = ref.label
            # hand this snapshot's propagation bases to the next one
            # (and release its worker pool — only one provider's
            # resources stay live at a time)
            bases = None
            if provider is not None:
                basis_getter = getattr(provider, "propagation_bases", None)
                if config.incremental and basis_getter is not None:
                    bases = basis_getter()
                closer = getattr(provider, "close", None)
                if closer is not None:
                    closer()
        metrics.gauge("monitor.snapshots").set(len(refs))
        metrics.gauge("monitor.pairs").set(len(units))
        metrics.gauge("monitor.transitions").set(len(refs) - 1)

    return WatchRun(
        events=tuple(events),
        labels=tuple(ref.label for ref in refs),
        metrics=tuple(spec.name for spec in specs),
        countries=tuple(countries),
        computed_units=computed_units,
        resumed_units=resumed_units,
    )


def render_watch(run: WatchRun) -> str:
    """A human-readable run summary, rendered from the event stream
    alone (anything the renderer needs must be in the events)."""
    lines = [
        "== watch ==",
        f"snapshots: {' -> '.join(run.labels)}",
        f"grid: {len(run.metrics)} metrics x {len(run.countries)} countries"
        f" ({', '.join(run.metrics)} | {', '.join(run.countries)})",
        f"rankings: {run.computed_units} computed, {run.resumed_units} resumed",
    ]
    drifts = run.drifts()
    if drifts:
        lines.append(f"-- drift ({len(drifts)} transitions measured)")
        for event in drifts:
            cell = event["metric"] + (
                f":{event['country']}" if event["country"] else ""
            )
            lines.append(
                f"{cell:<12} {event['before']} -> {event['after']}"
                f"  tau={event['tau']:+.3f}  ndcg={event['ndcg']:.3f}"
                f"  top-{event['top']}: +{len(event['entered'])}"
                f" -{len(event['exited'])}"
            )
    alerts = run.alerts()
    lines.append(f"-- alerts ({len(alerts)})")
    for event in alerts:
        cell = event["metric"] + (
            f":{event['country']}" if event["country"] else ""
        )
        lines.append(
            f"[{event['severity']}] {cell} {event['before']} -> "
            f"{event['after']}: " + "; ".join(event["reasons"])
        )
    if not alerts:
        lines.append("(none)")
    return "\n".join(lines)
